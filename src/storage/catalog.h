// Catalog: persistent table/index metadata plus named meta blobs.
//
// Serialized into a page chain rooted at page 1 on Checkpoint(); read at
// Open(). Format (little endian, packed into the chain payload):
//   u32 magic | u32 version
//   u32 table_count
//   per table: str name | u16 ncols | per col: (str name, u8 type)
//              | heap meta (first, last, records, pages: u64 x 4)
//              | u16 nindexes
//              | per index: str name | u8 ncols | u16 col_idx... | u64 meta
//              | u32 nsegments                             (version >= 3)
//              | per segment: u64 first_page | u32 rows | u32 pages
//                             | u64 encoded_bytes | u32 nan_mask
//                             | f64 min, f64 max per column
//   u32 blob_count                                        (version >= 2)
//   per blob:  str name | u32 length | bytes
// where str = u16 length + bytes. Meta blobs are opaque named payloads
// for engine state that rides along with the catalog — e.g. the ingest
// pipeline's resumable segmenter/extractor/pair-window state. Version 3
// added the per-table columnar segment directory (the persistent form
// of ColumnStoreMeta); v1/v2 catalogs read as segment-free.

#ifndef SEGDIFF_STORAGE_CATALOG_H_
#define SEGDIFF_STORAGE_CATALOG_H_

#include <map>
#include <string>
#include <vector>

#include "common/result.h"
#include "storage/buffer_pool.h"
#include "storage/column_page.h"
#include "storage/heap_file.h"
#include "storage/record.h"

namespace segdiff {

/// Plain serialized form of one index.
struct IndexMeta {
  std::string name;
  std::vector<size_t> key_columns;
  PageId meta_page = kInvalidPageId;
};

/// Plain serialized form of one table.
struct TableMeta {
  std::string name;
  TableSchema schema;
  HeapFileMeta heap;
  std::vector<IndexMeta> indexes;
  ColumnStoreMeta columnar;  ///< empty for pure row-format tables
};

/// The whole persistent catalog: table metadata plus named meta blobs
/// (an ordered map, so serialization is deterministic).
struct CatalogData {
  std::vector<TableMeta> tables;
  std::map<std::string, std::string> blobs;
};

/// Writes the catalog payload into the chain rooted at page 1, allocating
/// continuation pages as needed (pages are reused across checkpoints).
Status WriteCatalog(BufferPool* pool, const CatalogData& catalog);

/// Reads the catalog; an all-zero page 1 yields an empty catalog (fresh
/// db). Version-1 catalogs (pre meta blobs) read as blob-free.
Result<CatalogData> ReadCatalog(BufferPool* pool);

}  // namespace segdiff

#endif  // SEGDIFF_STORAGE_CATALOG_H_
