#include "storage/column_page.h"

#include <bit>
#include <cmath>
#include <cstring>
#include <limits>

#include "common/coding.h"

namespace segdiff {
namespace {

// Segment blob layout (little-endian):
//   [0..3]   magic "CSG1"
//   [4..5]   version (1)
//   [6..7]   number of columns
//   [8..11]  rows
//   [12..15] NaN mask (bit c set => column c holds at least one NaN)
//   then one 32-byte directory entry per column:
//     +0  encoding   +1 scale_log10   +2 bit_width (u16)
//     +4  payload_bytes (u32)         +8 base (i64)
//     +16 min (f64)                   +24 max (f64)
//   then the column payloads, in column order.
constexpr uint32_t kSegmentMagic = 0x31475343;  // "CSG1"
constexpr uint16_t kSegmentVersion = 1;
constexpr size_t kSegmentHeaderBytes = 16;
constexpr size_t kDirEntryBytes = 32;

// Chain pages mirror the heap-file header shape so scrub/debug tooling
// sees one chain layout: [0..7] next page, [8..9] payload bytes in this
// page, [10] page-kind marker, [11..15] reserved.
constexpr size_t kChainHeaderBytes = 16;
constexpr uint8_t kColumnPageKind = 0xC1;
constexpr size_t kPagePayloadBytes = kPageCapacity - kChainHeaderBytes;

// Decode reads whole 64-bit words, so every payload buffer handed to a
// cursor must stay readable for this many bytes past its end; the
// scratch buffers that assemble payloads append the slack explicitly.
constexpr size_t kPayloadSlackBytes = 8;

constexpr double kPow10[] = {1.0, 10.0, 100.0, 1000.0, 10000.0};
constexpr unsigned kMaxScaleLog10 = 4;

// Quantized magnitudes are capped well below 2^53 so every integer is
// exactly representable and deltas cannot overflow.
constexpr double kMaxQuantized = 9.0e15;

uint64_t DoubleBits(double v) {
  uint64_t bits;
  std::memcpy(&bits, &v, sizeof(bits));
  return bits;
}

double BitsToDouble(uint64_t bits) {
  double v;
  std::memcpy(&v, &bits, sizeof(v));
  return v;
}

unsigned BitWidth(uint64_t v) {
  return v == 0 ? 0u : 64u - static_cast<unsigned>(std::countl_zero(v));
}

uint64_t ZigZag(int64_t v) {
  return (static_cast<uint64_t>(v) << 1) ^
         static_cast<uint64_t>(v >> 63);
}

int64_t UnZigZag(uint64_t z) {
  return static_cast<int64_t>(z >> 1) ^ -static_cast<int64_t>(z & 1);
}

uint64_t LoadWord(const char* p) {
  uint64_t w;
  std::memcpy(&w, p, sizeof(w));
  return w;
}

/// Reads `bits` (1..64) starting at bit `pos`. Requires
/// kPayloadSlackBytes of readable memory past the payload's last byte.
inline uint64_t ReadBitsAt(const char* payload, uint64_t pos,
                           unsigned bits) {
  const size_t byte = pos >> 3;
  const unsigned off = pos & 7;
  uint64_t w = LoadWord(payload + byte) >> off;
  const unsigned avail = 64 - off;
  if (bits > avail) {
    w |= static_cast<uint64_t>(static_cast<uint8_t>(payload[byte + 8]))
         << avail;
  }
  return bits == 64 ? w : (w & ((1ull << bits) - 1));
}

/// Append-only bit stream over a std::string.
class BitWriter {
 public:
  explicit BitWriter(std::string* out) : out_(out) {}

  /// Appends the low `bits` bits of `v` (high bits must be zero).
  void Put(uint64_t v, unsigned bits) {
    if (bits == 0) {
      return;
    }
    acc_ |= v << used_;
    if (used_ + bits >= 64) {
      FlushWord();
      const unsigned consumed = 64 - used_;
      acc_ = consumed < 64 ? (v >> consumed) : 0;
      used_ = used_ + bits - 64;
    } else {
      used_ += bits;
    }
  }

  /// Flushes the trailing partial word; the writer is spent afterwards.
  void Finish() {
    char buf[8];
    EncodeFixed64(buf, acc_);
    out_->append(buf, (used_ + 7) / 8);
    acc_ = 0;
    used_ = 0;
  }

 private:
  void FlushWord() {
    char buf[8];
    EncodeFixed64(buf, acc_);
    out_->append(buf, 8);
  }

  std::string* out_;
  uint64_t acc_ = 0;
  unsigned used_ = 0;  ///< bits pending in acc_
};

/// Chosen encoding for one column plus everything the directory needs.
struct ColumnPlan {
  ColumnEncoding encoding = ColumnEncoding::kRaw;
  uint8_t scale_log10 = 0;
  uint16_t bit_width = 0;
  int64_t base = 0;
  double min = std::numeric_limits<double>::infinity();
  double max = -std::numeric_limits<double>::infinity();
  bool has_nan = false;
  std::string payload;
};

/// True when every value lands exactly on the 10^-s decimal grid, i.e.
/// round-tripping through llround(v * 10^s) reproduces the bit pattern.
/// Rejects NaN/inf, -0.0 and anything past kMaxQuantized.
bool TryQuantize(const uint64_t* bits, size_t rows, unsigned s,
                 std::vector<int64_t>* xs) {
  const double scale = kPow10[s];
  for (size_t i = 0; i < rows; ++i) {
    const double v = BitsToDouble(bits[i]);
    if (!std::isfinite(v)) {
      return false;
    }
    const double scaled = v * scale;
    if (!(std::fabs(scaled) < kMaxQuantized)) {
      return false;
    }
    const int64_t x = std::llround(scaled);
    const double back =
        s == 0 ? static_cast<double>(x) : static_cast<double>(x) / scale;
    if (DoubleBits(back) != bits[i]) {
      return false;
    }
    (*xs)[i] = x;
  }
  return true;
}

void EncodeXorPayload(const uint64_t* bits, size_t rows,
                      std::string* payload) {
  BitWriter bw(payload);
  bw.Put(bits[0], 64);
  uint64_t prev = bits[0];
  for (size_t i = 1; i < rows; ++i) {
    const uint64_t x = prev ^ bits[i];
    prev = bits[i];
    if (x == 0) {
      bw.Put(0, 1);
      continue;
    }
    const unsigned lz = static_cast<unsigned>(std::countl_zero(x));
    const unsigned tz = static_cast<unsigned>(std::countr_zero(x));
    const unsigned sig = 64 - lz - tz;
    bw.Put(1, 1);
    bw.Put(lz, 6);
    bw.Put(sig - 1, 6);
    bw.Put(x >> tz, sig);
  }
  bw.Finish();
}

ColumnPlan PlanColumn(const uint64_t* bits, size_t rows) {
  ColumnPlan plan;
  for (size_t i = 0; i < rows; ++i) {
    const double v = BitsToDouble(bits[i]);
    if (std::isnan(v)) {
      plan.has_nan = true;
    } else {
      plan.min = std::min(plan.min, v);
      plan.max = std::max(plan.max, v);
    }
  }

  std::vector<int64_t> xs(rows);
  bool quantized = false;
  unsigned scale = 0;
  if (!plan.has_nan) {
    for (unsigned s = 0; s <= kMaxScaleLog10 && !quantized; ++s) {
      if (TryQuantize(bits, rows, s, &xs)) {
        quantized = true;
        scale = s;
      }
    }
  }

  if (quantized) {
    int64_t min_x = xs[0];
    int64_t max_x = xs[0];
    uint64_t max_zig = 0;
    for (size_t i = 0; i < rows; ++i) {
      min_x = std::min(min_x, xs[i]);
      max_x = std::max(max_x, xs[i]);
      if (i > 0) {
        max_zig = std::max(max_zig, ZigZag(xs[i] - xs[i - 1]));
      }
    }
    const unsigned wf =
        BitWidth(static_cast<uint64_t>(max_x) - static_cast<uint64_t>(min_x));
    const unsigned wd = BitWidth(max_zig);
    const uint64_t for_bytes = (rows * wf + 7) / 8;
    const uint64_t delta_bytes = ((rows - 1) * wd + 7) / 8;
    plan.scale_log10 = static_cast<uint8_t>(scale);
    if (for_bytes <= delta_bytes) {
      plan.encoding = ColumnEncoding::kForPacked;
      plan.bit_width = static_cast<uint16_t>(wf);
      plan.base = min_x;
      BitWriter bw(&plan.payload);
      for (size_t i = 0; i < rows; ++i) {
        bw.Put(static_cast<uint64_t>(xs[i]) - static_cast<uint64_t>(min_x),
               wf);
      }
      bw.Finish();
    } else {
      plan.encoding = ColumnEncoding::kDeltaPacked;
      plan.bit_width = static_cast<uint16_t>(wd);
      plan.base = xs[0];
      BitWriter bw(&plan.payload);
      for (size_t i = 1; i < rows; ++i) {
        bw.Put(ZigZag(xs[i] - xs[i - 1]), wd);
      }
      bw.Finish();
    }
    return plan;
  }

  EncodeXorPayload(bits, rows, &plan.payload);
  if (plan.payload.size() >= rows * 8) {
    plan.encoding = ColumnEncoding::kRaw;
    plan.payload.clear();
    plan.payload.reserve(rows * 8);
    char buf[8];
    for (size_t i = 0; i < rows; ++i) {
      EncodeFixed64(buf, bits[i]);
      plan.payload.append(buf, 8);
    }
  } else {
    plan.encoding = ColumnEncoding::kXor;
  }
  return plan;
}

ColumnDirEntry DirFromPlan(const ColumnPlan& plan) {
  ColumnDirEntry dir;
  dir.encoding = plan.encoding;
  dir.scale_log10 = plan.scale_log10;
  dir.bit_width = plan.bit_width;
  dir.payload_bytes = static_cast<uint32_t>(plan.payload.size());
  dir.base = plan.base;
  dir.min = plan.min;
  dir.max = plan.max;
  return dir;
}

/// Decodes the plan's payload and compares every bit pattern against the
/// source. The encodings are verified constructions, so this never fires
/// in practice — but conversion is the one place a latent encoder bug
/// could silently change query results, so every segment buys the check
/// once at encode time.
bool PlanRoundTrips(const ColumnPlan& plan, const uint64_t* bits,
                    size_t rows) {
  ColumnDirEntry dir = DirFromPlan(plan);
  std::string payload = plan.payload;
  payload.append(kPayloadSlackBytes, '\0');
  ColumnCursor cursor(&dir, payload.data(), rows);
  std::vector<double> decoded(rows);
  cursor.Decode(rows, decoded.data());
  for (size_t i = 0; i < rows; ++i) {
    if (DoubleBits(decoded[i]) != bits[i]) {
      return false;
    }
  }
  return true;
}

}  // namespace

const char* ColumnEncodingName(ColumnEncoding encoding) {
  switch (encoding) {
    case ColumnEncoding::kRaw:
      return "raw";
    case ColumnEncoding::kForPacked:
      return "for";
    case ColumnEncoding::kDeltaPacked:
      return "delta";
    case ColumnEncoding::kXor:
      return "xor";
  }
  return "unknown";
}

std::string EncodeColumnSegment(const char* records, size_t num_columns,
                                size_t rows) {
  std::vector<uint64_t> bits(rows);
  std::vector<ColumnPlan> plans;
  plans.reserve(num_columns);
  uint32_t nan_mask = 0;
  for (size_t c = 0; c < num_columns; ++c) {
    for (size_t i = 0; i < rows; ++i) {
      bits[i] = DecodeFixed64(records + (i * num_columns + c) * 8);
    }
    ColumnPlan plan = PlanColumn(bits.data(), rows);
    if (!PlanRoundTrips(plan, bits.data(), rows)) {
      plan.encoding = ColumnEncoding::kRaw;
      plan.bit_width = 0;
      plan.payload.clear();
      char buf[8];
      for (size_t i = 0; i < rows; ++i) {
        EncodeFixed64(buf, bits[i]);
        plan.payload.append(buf, 8);
      }
    }
    if (plan.has_nan) {
      nan_mask |= 1u << c;
    }
    plans.push_back(std::move(plan));
  }

  std::string blob;
  size_t total = kSegmentHeaderBytes + num_columns * kDirEntryBytes;
  for (const ColumnPlan& plan : plans) {
    total += plan.payload.size();
  }
  blob.reserve(total);
  blob.resize(kSegmentHeaderBytes + num_columns * kDirEntryBytes);
  char* h = blob.data();
  EncodeFixed32(h, kSegmentMagic);
  EncodeFixed16(h + 4, kSegmentVersion);
  EncodeFixed16(h + 6, static_cast<uint16_t>(num_columns));
  EncodeFixed32(h + 8, static_cast<uint32_t>(rows));
  EncodeFixed32(h + 12, nan_mask);
  for (size_t c = 0; c < num_columns; ++c) {
    char* e = h + kSegmentHeaderBytes + c * kDirEntryBytes;
    const ColumnPlan& plan = plans[c];
    e[0] = static_cast<char>(plan.encoding);
    e[1] = static_cast<char>(plan.scale_log10);
    EncodeFixed16(e + 2, plan.bit_width);
    EncodeFixed32(e + 4, static_cast<uint32_t>(plan.payload.size()));
    EncodeFixed64(e + 8, static_cast<uint64_t>(plan.base));
    EncodeDouble(e + 16, plan.min);
    EncodeDouble(e + 24, plan.max);
  }
  for (const ColumnPlan& plan : plans) {
    blob.append(plan.payload);
  }
  return blob;
}

ColumnCursor::ColumnCursor(const ColumnDirEntry* dir, const char* payload,
                           size_t rows)
    : dir_(dir), payload_(payload), rows_(rows) {}

void ColumnCursor::Decode(size_t n, double* out) {
  if (n == 0) {
    return;
  }
  switch (dir_->encoding) {
    case ColumnEncoding::kRaw:
      for (size_t i = 0; i < n; ++i) {
        out[i] = BitsToDouble(DecodeFixed64(payload_ + (pos_ + i) * 8));
      }
      pos_ += n;
      return;
    case ColumnEncoding::kForPacked:
    case ColumnEncoding::kDeltaPacked:
      DecodePacked(n, out);
      pos_ += n;
      return;
    case ColumnEncoding::kXor:
      DecodeXor(n, out);
      pos_ += n;
      return;
  }
}

void ColumnCursor::Skip(size_t n) {
  if (n == 0) {
    return;
  }
  switch (dir_->encoding) {
    case ColumnEncoding::kRaw:
      pos_ += n;
      return;
    case ColumnEncoding::kForPacked:
      bit_pos_ += n * dir_->bit_width;
      pos_ += n;
      return;
    case ColumnEncoding::kDeltaPacked:
    case ColumnEncoding::kXor: {
      // Both encodings carry running state, so skipping still walks the
      // stream — but into a small scratch, touching no caller memory.
      double scratch[128];
      while (n > 0) {
        const size_t step = std::min(n, sizeof(scratch) / sizeof(double));
        Decode(step, scratch);
        n -= step;
      }
      return;
    }
  }
}

void ColumnCursor::DecodePacked(size_t n, double* out) {
  const unsigned w = dir_->bit_width;
  const unsigned s = dir_->scale_log10;
  const double scale = kPow10[s];
  uint64_t pos = bit_pos_;
  if (dir_->encoding == ColumnEncoding::kForPacked) {
    const int64_t base = dir_->base;
    for (size_t i = 0; i < n; ++i) {
      uint64_t d = 0;
      if (w != 0) {
        d = ReadBitsAt(payload_, pos, w);
        pos += w;
      }
      const int64_t x = base + static_cast<int64_t>(d);
      out[i] = s == 0 ? static_cast<double>(x)
                      : static_cast<double>(x) / scale;
    }
  } else {
    int64_t cur = prev_int_;
    size_t i = 0;
    if (pos_ == 0) {
      cur = dir_->base;
      out[i++] = s == 0 ? static_cast<double>(cur)
                        : static_cast<double>(cur) / scale;
    }
    for (; i < n; ++i) {
      uint64_t z = 0;
      if (w != 0) {
        z = ReadBitsAt(payload_, pos, w);
        pos += w;
      }
      cur += UnZigZag(z);
      out[i] = s == 0 ? static_cast<double>(cur)
                      : static_cast<double>(cur) / scale;
    }
    prev_int_ = cur;
  }
  bit_pos_ = pos;
}

void ColumnCursor::DecodeXor(size_t n, double* out) {
  uint64_t pos = bit_pos_;
  uint64_t prev = prev_bits_;
  size_t i = 0;
  if (pos_ == 0) {
    prev = ReadBitsAt(payload_, pos, 64);
    pos += 64;
    out[i++] = BitsToDouble(prev);
  }
  for (; i < n; ++i) {
    const uint64_t changed = ReadBitsAt(payload_, pos, 1);
    pos += 1;
    if (changed) {
      const unsigned lz =
          static_cast<unsigned>(ReadBitsAt(payload_, pos, 6));
      const unsigned sig =
          static_cast<unsigned>(ReadBitsAt(payload_, pos + 6, 6)) + 1;
      const uint64_t sig_bits = ReadBitsAt(payload_, pos + 12, sig);
      pos += 12 + sig;
      prev ^= sig_bits << (64 - lz - sig);
    }
    out[i] = BitsToDouble(prev);
  }
  bit_pos_ = pos;
  prev_bits_ = prev;
}

Result<ColumnSegmentHandle> ColumnSegmentHandle::Open(
    BufferPool* pool, const ColumnSegmentInfo& info) {
  ColumnSegmentHandle handle;
  handle.pool_ = pool;
  handle.info_ = info;
  handle.pages_.reserve(info.pages);
  handle.page_bytes_.reserve(info.pages);

  // Walk the chain, fetching every page through the pool so each one is
  // checksum-verified — including pages a pruned scan never decodes.
  uint64_t payload_total = 0;
  PageId current = info.first_page;
  while (current != kInvalidPageId) {
    if (handle.pages_.size() >= info.pages) {
      return Status::Corruption("columnar chain longer than directory");
    }
    SEGDIFF_ASSIGN_OR_RETURN(PageHandle page, pool->Fetch(current));
    const char* d = page.data();
    if (static_cast<uint8_t>(d[10]) != kColumnPageKind) {
      return Status::Corruption("columnar chain links to non-columnar page " +
                                std::to_string(current));
    }
    const uint16_t bytes = DecodeFixed16(d + 8);
    if (bytes == 0 || bytes > kPagePayloadBytes) {
      return Status::Corruption("columnar page has invalid payload size");
    }
    if (handle.pages_.empty()) {
      if (bytes < kSegmentHeaderBytes) {
        return Status::Corruption("columnar segment header truncated");
      }
      const char* h = d + kChainHeaderBytes;
      if (DecodeFixed32(h) != kSegmentMagic) {
        return Status::Corruption("bad columnar segment magic");
      }
      if (DecodeFixed16(h + 4) != kSegmentVersion) {
        return Status::Corruption("unsupported columnar segment version");
      }
      const size_t num_columns = DecodeFixed16(h + 6);
      handle.rows_ = DecodeFixed32(h + 8);
      handle.nan_mask_ = DecodeFixed32(h + 12);
      if (num_columns == 0 || num_columns > 32 ||
          handle.rows_ == 0 || handle.rows_ > ColumnStore::kMaxSegmentRows ||
          handle.rows_ != info.rows) {
        return Status::Corruption("columnar segment header invalid");
      }
      const size_t header_bytes =
          kSegmentHeaderBytes + num_columns * kDirEntryBytes;
      if (bytes < header_bytes) {
        return Status::Corruption("columnar segment directory truncated");
      }
      handle.header_buf_.assign(h, header_bytes);
      handle.dir_.resize(num_columns);
      handle.col_scratch_.resize(num_columns);
      uint64_t offset = header_bytes;
      for (size_t c = 0; c < num_columns; ++c) {
        const char* e =
            handle.header_buf_.data() + kSegmentHeaderBytes +
            c * kDirEntryBytes;
        ColumnDirEntry& dir = handle.dir_[c];
        const uint8_t enc = static_cast<uint8_t>(e[0]);
        if (enc > static_cast<uint8_t>(ColumnEncoding::kXor)) {
          return Status::Corruption("unknown column encoding");
        }
        dir.encoding = static_cast<ColumnEncoding>(enc);
        dir.scale_log10 = static_cast<uint8_t>(e[1]);
        if (dir.scale_log10 > kMaxScaleLog10) {
          return Status::Corruption("column scale out of range");
        }
        dir.bit_width = DecodeFixed16(e + 2);
        if (dir.bit_width > 64) {
          return Status::Corruption("column bit width out of range");
        }
        dir.payload_bytes = DecodeFixed32(e + 4);
        dir.base = static_cast<int64_t>(DecodeFixed64(e + 8));
        dir.min = DecodeDouble(e + 16);
        dir.max = DecodeDouble(e + 24);
        dir.payload_offset = offset;
        offset += dir.payload_bytes;
      }
      if (offset != info.encoded_bytes) {
        return Status::Corruption(
            "columnar segment size disagrees with directory");
      }
    }
    handle.pages_.push_back(current);
    handle.page_bytes_.push_back(bytes);
    payload_total += bytes;
    current = DecodeFixed64(d);
  }
  if (handle.pages_.size() != info.pages ||
      payload_total != info.encoded_bytes) {
    return Status::Corruption("columnar chain shorter than directory");
  }
  return handle;
}

Result<const char*> ColumnSegmentHandle::ColumnPayload(size_t c) {
  const ColumnDirEntry& dir = dir_[c];
  std::string& scratch = col_scratch_[c];
  if (dir.payload_bytes == 0) {
    // Constant column (bit width 0): the cursor never reads the payload,
    // but hand back slack so word loads stay in bounds regardless.
    if (scratch.empty()) {
      scratch.assign(kPayloadSlackBytes, '\0');
    }
    return scratch.data();
  }
  if (!scratch.empty()) {
    return scratch.data();
  }
  scratch.reserve(dir.payload_bytes + kPayloadSlackBytes);
  const uint64_t begin = dir.payload_offset;
  const uint64_t end = begin + dir.payload_bytes;
  uint64_t page_start = 0;
  for (size_t i = 0; i < pages_.size(); ++i) {
    const uint64_t page_end = page_start + page_bytes_[i];
    if (page_end > begin && page_start < end) {
      SEGDIFF_ASSIGN_OR_RETURN(PageHandle page, pool_->Fetch(pages_[i]));
      const uint64_t lo = std::max(begin, page_start);
      const uint64_t hi = std::min(end, page_end);
      scratch.append(
          page.data() + kChainHeaderBytes + (lo - page_start), hi - lo);
    }
    if (page_end >= end) {
      break;
    }
    page_start = page_end;
  }
  if (scratch.size() != dir.payload_bytes) {
    return Status::Corruption("columnar payload extends past its chain");
  }
  scratch.append(kPayloadSlackBytes, '\0');
  return scratch.data();
}

Result<ColumnCursor> ColumnSegmentHandle::OpenColumn(size_t c) {
  if (c >= dir_.size()) {
    return Status::InvalidArgument("column index out of range");
  }
  SEGDIFF_ASSIGN_OR_RETURN(const char* payload, ColumnPayload(c));
  return ColumnCursor(&dir_[c], payload, rows_);
}

Status ColumnSegmentHandle::DecodeColumn(size_t c, double* out) {
  SEGDIFF_ASSIGN_OR_RETURN(ColumnCursor cursor, OpenColumn(c));
  cursor.Decode(rows_, out);
  return Status::OK();
}

Status ColumnSegmentHandle::ReadRow(size_t row, char* record) {
  if (row >= rows_) {
    return Status::NotFound("columnar row out of range");
  }
  for (size_t c = 0; c < dir_.size(); ++c) {
    SEGDIFF_ASSIGN_OR_RETURN(ColumnCursor cursor, OpenColumn(c));
    cursor.Skip(row);
    double value = 0.0;
    cursor.Decode(1, &value);
    EncodeDouble(record + c * 8, value);
  }
  return Status::OK();
}

ColumnStore::ColumnStore(BufferPool* pool, size_t num_columns)
    : pool_(pool), num_columns_(num_columns) {}

ColumnStore::ColumnStore(BufferPool* pool, size_t num_columns,
                         ColumnStoreMeta meta)
    : pool_(pool), num_columns_(num_columns), meta_(std::move(meta)) {
  for (size_t i = 0; i < meta_.segments.size(); ++i) {
    by_first_page_[meta_.segments[i].first_page] = i;
  }
}

Status ColumnStore::AppendSegment(const char* records, size_t rows) {
  if (rows == 0 || rows > kMaxSegmentRows) {
    return Status::InvalidArgument("columnar segment row count invalid");
  }
  const std::string blob = EncodeColumnSegment(records, num_columns_, rows);

  ColumnSegmentInfo info;
  info.rows = static_cast<uint32_t>(rows);
  info.encoded_bytes = blob.size();
  // Lift the zone statistics the encoder computed out of the blob header
  // into the directory entry, where pruning reads them for free.
  info.nan_mask = DecodeFixed32(blob.data() + 12);
  info.min.resize(num_columns_);
  info.max.resize(num_columns_);
  for (size_t c = 0; c < num_columns_; ++c) {
    const char* e = blob.data() + kSegmentHeaderBytes + c * kDirEntryBytes;
    info.min[c] = DecodeDouble(e + 16);
    info.max[c] = DecodeDouble(e + 24);
  }
  const char* src = blob.data();
  size_t remaining = blob.size();
  PageHandle prev;
  while (remaining > 0) {
    // Single-page allocations, no extents: segments are written in one
    // burst per table (compaction-time conversion), so the chain lands
    // sequential anyway, and a compacted store carries no extent slack.
    SEGDIFF_ASSIGN_OR_RETURN(PageHandle page, pool_->AllocatePinned());
    const PageId id = page.page_id();
    const size_t take = std::min(remaining, kPagePayloadBytes);
    char* d = page.data();
    EncodeFixed64(d, kInvalidPageId);
    EncodeFixed16(d + 8, static_cast<uint16_t>(take));
    d[10] = static_cast<char>(kColumnPageKind);
    std::memcpy(d + kChainHeaderBytes, src, take);
    page.MarkDirty();
    if (prev.valid()) {
      EncodeFixed64(prev.data(), id);
      prev.MarkDirty();
    } else {
      info.first_page = id;
    }
    prev = std::move(page);
    src += take;
    remaining -= take;
    ++info.pages;
  }

  by_first_page_[info.first_page] = meta_.segments.size();
  meta_.segments.push_back(info);
  meta_.row_count += rows;
  meta_.page_count += info.pages;
  meta_.encoded_bytes += info.encoded_bytes;
  return Status::OK();
}

Result<ColumnSegmentHandle> ColumnStore::OpenSegment(size_t idx) const {
  if (idx >= meta_.segments.size()) {
    return Status::InvalidArgument("columnar segment index out of range");
  }
  return ColumnSegmentHandle::Open(pool_, meta_.segments[idx]);
}

size_t ColumnStore::FindSegment(PageId first_page) const {
  auto it = by_first_page_.find(first_page);
  return it == by_first_page_.end() ? npos : it->second;
}

Status ColumnStore::ReadRow(RecordId id, char* record) const {
  const size_t idx = FindSegment(id.page);
  if (idx == npos) {
    return Status::NotFound("record id does not address a columnar segment");
  }
  const ColumnSegmentInfo& info = meta_.segments[idx];
  if (id.slot >= info.rows) {
    return Status::NotFound("columnar row out of range");
  }
  std::shared_ptr<DecodedSegment> seg;
  {
    std::lock_guard<std::mutex> lock(cache_mu_);
    if (cache_ != nullptr && cache_->first_page == id.page) {
      seg = cache_;
    }
  }
  if (seg == nullptr) {
    SEGDIFF_ASSIGN_OR_RETURN(ColumnSegmentHandle handle, OpenSegment(idx));
    seg = std::make_shared<DecodedSegment>();
    seg->first_page = id.page;
    seg->rows = info.rows;
    seg->values.resize(num_columns_ * info.rows);
    for (size_t c = 0; c < num_columns_; ++c) {
      SEGDIFF_RETURN_IF_ERROR(
          handle.DecodeColumn(c, seg->values.data() + c * info.rows));
    }
    std::lock_guard<std::mutex> lock(cache_mu_);
    cache_ = seg;
  }
  for (size_t c = 0; c < num_columns_; ++c) {
    EncodeDouble(record + c * 8, seg->values[c * info.rows + id.slot]);
  }
  return Status::OK();
}

}  // namespace segdiff
