// Pager: page-granular IO over a single database file.
//
// File layout: page 0 is the header (magic, version, page count); all
// other pages are opaque to the pager. Reads/writes use pread/pwrite so
// no seek state is shared.

#ifndef SEGDIFF_STORAGE_PAGER_H_
#define SEGDIFF_STORAGE_PAGER_H_

#include <atomic>
#include <memory>
#include <mutex>
#include <string>

#include "common/result.h"
#include "storage/page.h"

namespace segdiff {

/// Owns the database file descriptor and the page allocation counter.
/// Concurrent ReadPage/WritePage calls are safe (pread/pwrite share no
/// seek state); allocation and header writes serialize on an internal
/// mutex.
class Pager {
 public:
  /// Opens (or creates, when `create` is true and the file is missing) a
  /// database file, validating or writing the header page. The special
  /// path ":memory:" creates an anonymous memory-backed database
  /// (memfd) that disappears when the pager is destroyed.
  static Result<std::unique_ptr<Pager>> Open(const std::string& path,
                                             bool create);

  ~Pager();
  Pager(const Pager&) = delete;
  Pager& operator=(const Pager&) = delete;

  /// Reads page `id` into `buf` (kPageSize bytes).
  Status ReadPage(PageId id, char* buf);

  /// Simulated storage latency, added to every ReadPage: `seq_ns` when
  /// the read continues the previous one (id == last id + 1), else
  /// `random_ns`. Models rotating-disk behaviour (the paper's testbed
  /// was a 2007 SATA disk with cold OS caches) on machines whose /tmp
  /// is RAM-backed; 0/0 (default) disables it. See DESIGN.md.
  void SetSimulatedReadLatency(uint64_t seq_ns, uint64_t random_ns);

  /// Writes `buf` (kPageSize bytes) to page `id`.
  Status WritePage(PageId id, const char* buf);

  /// Extends the file by one zeroed page and returns its id.
  Result<PageId> AllocatePage();

  /// Extends the file by `n` zeroed pages and returns the first id.
  /// Storage objects allocate in extents so their pages stay contiguous
  /// on disk (sequential scans then read sequentially even when several
  /// objects grow concurrently).
  Result<PageId> AllocateExtent(size_t n);

  /// Pages in the file, including header.
  uint64_t page_count() const { return page_count_.load(); }

  /// Bytes on disk (page_count * kPageSize).
  uint64_t FileSizeBytes() const { return page_count_.load() * kPageSize; }

  /// Persists the header (page count) and fsyncs.
  Status Sync();

  const std::string& path() const { return path_; }

 private:
  Pager(std::string path, int fd, uint64_t page_count)
      : path_(std::move(path)), fd_(fd), page_count_(page_count) {}

  Status WriteHeader();

  std::string path_;
  int fd_ = -1;
  std::atomic<uint64_t> page_count_{0};
  uint64_t sim_seq_read_ns_ = 0;
  uint64_t sim_random_read_ns_ = 0;
  std::atomic<PageId> last_read_page_{kInvalidPageId};
  std::mutex alloc_mu_;  ///< guards file extension + header writes
};

}  // namespace segdiff

#endif  // SEGDIFF_STORAGE_PAGER_H_
