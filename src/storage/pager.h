// Pager: page-granular IO over a single database file.
//
// File layout: page 0 is the header (magic, version, page count); all
// other pages are opaque to the pager except for their trailer. All IO
// goes through a Vfs (common/vfs.h), which centralizes short-IO/EINTR
// handling and lets tests inject faults.
//
// Durability & integrity (file format v2):
//   - every page ends in an 8-byte trailer: CRC32C of the payload plus a
//     trailer magic (see storage/page.h). WritePage/AllocateExtent stamp
//     it; ReadPage verifies it and returns Status::Corruption naming the
//     page on mismatch — a flipped bit on disk can never surface as a
//     silently wrong query result.
//   - Sync() persists the header and fsyncs; after creating a file it
//     also fsyncs the parent directory once, so a crash right after
//     Create cannot lose the store's directory entry.
// Legacy v1 files (no trailers) open read-only: reads work without
// checksum verification, any write returns NotSupported telling the user
// to compact (compaction rewrites into a fresh v2 file).

#ifndef SEGDIFF_STORAGE_PAGER_H_
#define SEGDIFF_STORAGE_PAGER_H_

#include <atomic>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/vfs.h"
#include "storage/page.h"

namespace segdiff {

/// One unreadable page found by Pager::Scrub.
struct ScrubIssue {
  PageId page = kInvalidPageId;
  std::string message;
};

/// Checksum health of a whole file (segdiff_cli verify --scrub).
struct ScrubReport {
  uint64_t pages_checked = 0;
  /// Pages whose checksums cannot be verified (legacy v1 file).
  uint64_t pages_unverifiable = 0;
  std::vector<ScrubIssue> corrupt;

  bool clean() const { return corrupt.empty(); }
};

/// Owns the database file and the page allocation counter.
/// Concurrent ReadPage/WritePage calls are safe (positional IO shares no
/// seek state); allocation and header writes serialize on an internal
/// mutex.
class Pager {
 public:
  static constexpr uint32_t kFormatLegacy = 1;  ///< no page trailers
  static constexpr uint32_t kFormatChecksummed = 2;

  /// Opens (or creates, when `create` is true and the file is missing) a
  /// database file, validating or writing the header page. The special
  /// path ":memory:" creates an anonymous memory-backed database that
  /// disappears when the pager is destroyed. `vfs` (nullptr = the
  /// default POSIX Vfs) must outlive the pager.
  static Result<std::unique_ptr<Pager>> Open(const std::string& path,
                                             bool create,
                                             Vfs* vfs = nullptr);

  ~Pager();
  Pager(const Pager&) = delete;
  Pager& operator=(const Pager&) = delete;

  /// Reads page `id` into `buf` (kPageSize bytes), verifying its
  /// checksum (v2 files; see set_verify_checksums).
  Status ReadPage(PageId id, char* buf);

  /// Reads page `id` without checksum verification or simulated latency:
  /// the buffer pool's undo-image capture must snapshot the on-disk
  /// bytes as they are, even when a crash left the page torn.
  Status ReadPageRaw(PageId id, char* buf);

  /// Simulated storage latency, added to every ReadPage: `seq_ns` when
  /// the read continues the previous one (id == last id + 1), else
  /// `random_ns`. Models rotating-disk behaviour (the paper's testbed
  /// was a 2007 SATA disk with cold OS caches) on machines whose /tmp
  /// is RAM-backed; 0/0 (default) disables it. See DESIGN.md.
  void SetSimulatedReadLatency(uint64_t seq_ns, uint64_t random_ns);

  /// Writes `buf` (kPageSize bytes) to page `id`, stamping the page
  /// trailer; the last kPageTrailerBytes of `buf` are ignored.
  Status WritePage(PageId id, const char* buf);

  /// Extends the file by one zeroed page and returns its id.
  Result<PageId> AllocatePage();

  /// Extends the file by `n` zeroed pages and returns the first id.
  /// Storage objects allocate in extents so their pages stay contiguous
  /// on disk (sequential scans then read sequentially even when several
  /// objects grow concurrently). Each fresh page is written with a valid
  /// trailer, so an allocated-but-never-written page still verifies.
  Result<PageId> AllocateExtent(size_t n);

  /// Pages in the file, including header.
  uint64_t page_count() const { return page_count_.load(); }

  /// WAL LSN through which this file's contents are known complete:
  /// every redo record with lsn <= applied_lsn() is reflected in the
  /// pages, so recovery replays only what lies beyond it. Stored in
  /// the header page; updated by fuzzy checkpoints (set, then Sync).
  /// 0 on legacy/pre-WAL files — their whole WAL (if any) replays.
  uint64_t applied_lsn() const { return applied_lsn_.load(); }
  void set_applied_lsn(uint64_t lsn) { applied_lsn_.store(lsn); }

  /// Bytes on disk (page_count * kPageSize).
  uint64_t FileSizeBytes() const { return page_count_.load() * kPageSize; }

  /// Persists the header (page count) and fsyncs; after file creation,
  /// also fsyncs the parent directory (once).
  Status Sync();

  /// Walks every page and verifies its checksum, collecting (not
  /// failing on) unreadable pages. Reads bypass simulated latency and
  /// always verify, regardless of set_verify_checksums. Corrupt pages
  /// are quarantined as a side effect.
  Result<ScrubReport> Scrub();

  /// Marks page `id` unreadable. Quarantined pages stay quarantined for
  /// the life of this pager (repair rewrites into a fresh file);
  /// ReadPage quarantines corrupt pages automatically, so a scan that
  /// trips over a bad page can ask afterwards which ranges to route
  /// around.
  void QuarantinePage(PageId id);
  bool IsQuarantined(PageId id) const;
  /// Snapshot of the quarantined page ids, sorted.
  std::vector<PageId> QuarantinedPages() const;
  uint64_t quarantined_count() const;

  const std::string& path() const { return path_; }

  /// The Vfs this pager's IO goes through (never null).
  Vfs* vfs() const { return vfs_; }

  /// On-disk format version (kFormatLegacy or kFormatChecksummed).
  uint32_t format_version() const { return format_version_; }

  /// Legacy v1 files are read-only: any write returns NotSupported.
  bool read_only() const { return format_version_ == kFormatLegacy; }

  /// Disables checksum verification on ReadPage (benchmarks measuring
  /// verification overhead; scrubbing still verifies). Writes always
  /// stamp trailers — a v2 file is never left with stale checksums.
  void set_verify_checksums(bool verify) { verify_checksums_ = verify; }
  bool verify_checksums() const { return verify_checksums_; }

 private:
  Pager(std::string path, std::unique_ptr<RandomAccessFile> file,
        uint64_t page_count, uint32_t format_version, Vfs* vfs,
        bool created)
      : path_(std::move(path)),
        file_(std::move(file)),
        vfs_(vfs),
        page_count_(page_count),
        format_version_(format_version),
        needs_dir_sync_(created) {}

  Status WriteHeader();
  /// Checksum check for one page already read into `buf`.
  Status VerifyPageBuffer(PageId id, const char* buf) const;

  std::string path_;
  std::unique_ptr<RandomAccessFile> file_;
  Vfs* vfs_;  ///< non-owning; outlives the pager
  std::atomic<uint64_t> page_count_{0};
  std::atomic<uint64_t> applied_lsn_{0};
  uint32_t format_version_ = kFormatChecksummed;
  bool verify_checksums_ = true;
  /// The file was created by this pager and its directory entry has not
  /// been fsynced yet; cleared by the first successful Sync.
  bool needs_dir_sync_ = false;
  uint64_t sim_seq_read_ns_ = 0;
  uint64_t sim_random_read_ns_ = 0;
  std::atomic<PageId> last_read_page_{kInvalidPageId};
  std::mutex alloc_mu_;  ///< guards file extension + header writes
  mutable std::mutex quarantine_mu_;
  std::set<PageId> quarantined_;  ///< guarded by quarantine_mu_
};

}  // namespace segdiff

#endif  // SEGDIFF_STORAGE_PAGER_H_
