#include "storage/zone_map.h"

#include <cmath>
#include <limits>

#include "common/bytes.h"

namespace segdiff {
namespace {

// 'Z' 'M' 'A' 'P' little endian.
constexpr uint32_t kZoneMapMagic = 0x50414D5Au;
constexpr uint8_t kZoneMapVersion = 1;

}  // namespace

bool ZoneMap::SupportsSchema(const TableSchema& schema) {
  if (schema.num_columns() == 0 || schema.num_columns() > kMaxColumns) {
    return false;
  }
  for (const Column& column : schema.columns()) {
    if (column.type != ColumnType::kDouble) {
      return false;
    }
  }
  return true;
}

ZoneMap::ZoneMap(size_t num_columns) : num_columns_(num_columns) {}

void ZoneMap::OnAppend(RecordId rid, const char* record) {
  if (zones_.empty() || zones_.back().page != rid.page) {
    by_page_.emplace(rid.page, zones_.size());
    zones_.push_back(Zone{rid.page, 0, 0});
    // Empty-range sentinel: min > max until a non-NaN value arrives.
    for (size_t c = 0; c < num_columns_; ++c) {
      bounds_.push_back(std::numeric_limits<double>::infinity());
      bounds_.push_back(-std::numeric_limits<double>::infinity());
    }
  }
  Zone& zone = zones_.back();
  double* zone_bounds = bounds_.data() + (zones_.size() - 1) * num_columns_ * 2;
  for (size_t c = 0; c < num_columns_; ++c) {
    const double v = DecodeDoubleColumn(record, c);
    if (std::isnan(v)) {
      zone.nan_mask |= 1u << c;
      continue;  // keep bounds NaN-free; NaN rows never match anyway
    }
    if (v < zone_bounds[2 * c]) {
      zone_bounds[2 * c] = v;
    }
    if (v > zone_bounds[2 * c + 1]) {
      zone_bounds[2 * c + 1] = v;
    }
  }
  ++zone.rows;
  ++total_rows_;
}

size_t ZoneMap::FindZone(PageId page) const {
  auto it = by_page_.find(page);
  return it == by_page_.end() ? kNoZone : it->second;
}

ZoneMap::ColumnRange ZoneMap::GlobalRange(size_t col) const {
  ColumnRange range{std::numeric_limits<double>::infinity(),
                    -std::numeric_limits<double>::infinity(), false};
  for (size_t z = 0; z < zones_.size(); ++z) {
    const double lo = Min(z, col);
    const double hi = Max(z, col);
    if (lo <= hi) {
      if (lo < range.lo) {
        range.lo = lo;
      }
      if (hi > range.hi) {
        range.hi = hi;
      }
    }
    range.has_nan = range.has_nan || HasNan(z, col);
  }
  return range;
}

std::string ZoneMap::Serialize() const {
  ByteWriter out;
  out.U32(kZoneMapMagic);
  out.U8(kZoneMapVersion);
  out.U32(static_cast<uint32_t>(num_columns_));
  out.U64(zones_.size());
  for (size_t z = 0; z < zones_.size(); ++z) {
    const Zone& zone = zones_[z];
    out.U64(zone.page);
    out.U32(zone.rows);
    out.U32(zone.nan_mask);
    for (size_t c = 0; c < num_columns_; ++c) {
      out.F64(Min(z, c));
      out.F64(Max(z, c));
    }
  }
  return out.Take();
}

Result<ZoneMap> ZoneMap::Deserialize(const std::string& blob) {
  ByteReader in(blob);
  SEGDIFF_ASSIGN_OR_RETURN(uint32_t magic, in.U32());
  if (magic != kZoneMapMagic) {
    return Status::Corruption("zone map blob has bad magic");
  }
  SEGDIFF_ASSIGN_OR_RETURN(uint8_t version, in.U8());
  if (version != kZoneMapVersion) {
    return Status::Corruption("zone map blob has unknown version");
  }
  SEGDIFF_ASSIGN_OR_RETURN(uint32_t num_columns, in.U32());
  if (num_columns == 0 || num_columns > kMaxColumns) {
    return Status::Corruption("zone map blob has bad column count");
  }
  SEGDIFF_ASSIGN_OR_RETURN(uint64_t zone_count, in.U64());
  if (zone_count > blob.size()) {  // cheap sanity bound before reserving
    return Status::Corruption("zone map blob has bad zone count");
  }
  ZoneMap map(num_columns);
  map.zones_.reserve(zone_count);
  map.bounds_.reserve(zone_count * num_columns * 2);
  for (uint64_t z = 0; z < zone_count; ++z) {
    Zone zone;
    SEGDIFF_ASSIGN_OR_RETURN(zone.page, in.U64());
    SEGDIFF_ASSIGN_OR_RETURN(zone.rows, in.U32());
    SEGDIFF_ASSIGN_OR_RETURN(zone.nan_mask, in.U32());
    if (zone.rows == 0 || !map.by_page_.emplace(zone.page, z).second) {
      return Status::Corruption("zone map blob has an invalid zone");
    }
    map.zones_.push_back(zone);
    map.total_rows_ += zone.rows;
    for (size_t c = 0; c < num_columns; ++c) {
      SEGDIFF_ASSIGN_OR_RETURN(double lo, in.F64());
      SEGDIFF_ASSIGN_OR_RETURN(double hi, in.F64());
      map.bounds_.push_back(lo);
      map.bounds_.push_back(hi);
    }
  }
  if (!in.exhausted()) {
    return Status::Corruption("zone map blob has trailing bytes");
  }
  return map;
}

}  // namespace segdiff
