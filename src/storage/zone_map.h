// Zone maps: per-heap-page column statistics for scan pruning.
//
// One zone summarizes one heap page of an all-double table: the row
// count it has observed, a per-column has-NaN bit, and per-column
// [min, max] bounds computed over the page's non-NaN values. A scan can
// skip a page when no value inside its bounds could satisfy the query's
// conjunctive column conditions (NaN rows never match a comparison, so
// bounds over the non-NaN values are sufficient evidence).
//
// Zone maps are derived data: they are maintained incrementally on
// append, serialized into the catalog as a `zonemap.<table>` meta blob
// at checkpoint, and rebuilt from a heap scan when absent or
// inconsistent (legacy stores, crash recovery). Losing one never loses
// rows — only pruning.

#ifndef SEGDIFF_STORAGE_ZONE_MAP_H_
#define SEGDIFF_STORAGE_ZONE_MAP_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "storage/page.h"
#include "storage/record.h"

namespace segdiff {

/// Reserved catalog-blob prefix; the full key is this + the table name.
inline constexpr char kZoneMapBlobPrefix[] = "zonemap.";

/// Per-page summary header. Column bounds live in the ZoneMap's flat
/// bounds array (zones x columns x {min, max}).
struct Zone {
  PageId page = kInvalidPageId;
  uint32_t rows = 0;      ///< records these stats cover
  uint32_t nan_mask = 0;  ///< bit c set: column c saw at least one NaN
};

class ZoneMap {
 public:
  /// nan_mask is 32 bits wide; wider all-double schemas simply run
  /// without a zone map (pruning disabled, scans stay correct).
  static constexpr size_t kMaxColumns = 32;
  static constexpr size_t kNoZone = static_cast<size_t>(-1);

  /// True for all-double schemas of at most kMaxColumns columns.
  static bool SupportsSchema(const TableSchema& schema);

  explicit ZoneMap(size_t num_columns);

  /// Folds one appended record into the zone of `rid.page`, opening a
  /// new zone when the append moved to a fresh page. Records must be
  /// appended in heap order (the only order HeapFile::Append produces).
  void OnAppend(RecordId rid, const char* record);

  size_t num_columns() const { return num_columns_; }
  size_t zone_count() const { return zones_.size(); }
  uint64_t total_rows() const { return total_rows_; }

  /// Index of the zone covering `page`, or kNoZone.
  size_t FindZone(PageId page) const;

  const Zone& zone(size_t zone_idx) const { return zones_[zone_idx]; }
  double Min(size_t zone_idx, size_t col) const {
    return bounds_[(zone_idx * num_columns_ + col) * 2];
  }
  double Max(size_t zone_idx, size_t col) const {
    return bounds_[(zone_idx * num_columns_ + col) * 2 + 1];
  }
  bool HasNan(size_t zone_idx, size_t col) const {
    return (zones_[zone_idx].nan_mask >> col) & 1u;
  }

  /// Observed range of a column across all zones. `lo > hi` when no
  /// non-NaN value was ever observed.
  struct ColumnRange {
    double lo;
    double hi;
    bool has_nan;
  };
  ColumnRange GlobalRange(size_t col) const;

  std::string Serialize() const;
  static Result<ZoneMap> Deserialize(const std::string& blob);

 private:
  size_t num_columns_;
  uint64_t total_rows_ = 0;
  std::vector<Zone> zones_;
  std::vector<double> bounds_;  ///< zones x columns x {min, max}
  std::unordered_map<PageId, size_t> by_page_;
};

}  // namespace segdiff

#endif  // SEGDIFF_STORAGE_ZONE_MAP_H_
