#include "storage/buffer_pool.h"

#include <algorithm>
#include <cstring>

#include "common/logging.h"

namespace segdiff {

PageHandle& PageHandle::operator=(PageHandle&& other) noexcept {
  if (this != &other) {
    Release();
    pool_ = other.pool_;
    frame_ = other.frame_;
    page_id_ = other.page_id_;
    data_ = other.data_;
    other.pool_ = nullptr;
    other.data_ = nullptr;
  }
  return *this;
}

PageHandle::~PageHandle() { Release(); }

void PageHandle::MarkDirty() {
  SEGDIFF_CHECK(valid());
  // The frame is pinned by this handle, so the dirty flag cannot race
  // with eviction; concurrent markers of the same pinned frame are
  // idempotent writes under the shard mutex.
  std::lock_guard<std::mutex> lock(pool_->ShardOf(page_id_).mu);
  pool_->frames_[frame_].dirty = true;
}

void PageHandle::Release() {
  if (pool_ != nullptr) {
    pool_->Unpin(frame_);
    pool_ = nullptr;
    data_ = nullptr;
  }
}

BufferPool::BufferPool(Pager* pager, size_t capacity_pages) : pager_(pager) {
  SEGDIFF_CHECK_GE(capacity_pages, size_t{1});
  const size_t num_shards = std::max(
      size_t{1}, std::min(kMaxShards, capacity_pages / kMinFramesPerShard));
  frames_.resize(capacity_pages);
  shards_ = std::vector<Shard>(num_shards);
  // Deal the frames out round-robin; each shard's free list is its whole
  // slice of the pool.
  for (size_t i = 0; i < capacity_pages; ++i) {
    frames_[i].data = std::make_unique<char[]>(kPageSize);
    shards_[i % num_shards].free_frames.push_back(i);
  }
  for (Shard& shard : shards_) {
    // Matches the historical "lowest frame grabbed first" order so the
    // single-shard case reproduces the original pool exactly.
    std::reverse(shard.free_frames.begin(), shard.free_frames.end());
  }
}

BufferPool::~BufferPool() {
  // Best-effort flush; errors here cannot be reported.
  Status status = FlushAll();
  if (!status.ok()) {
    SEGDIFF_LOG(Error) << "buffer pool flush on destruction failed: "
                       << status.ToString();
  }
}

void BufferPool::Unpin(size_t frame_idx) {
  Frame& frame = frames_[frame_idx];
  // The frame is pinned (by the releasing handle), so its page_id is
  // stable and names the owning shard.
  Shard& shard = ShardOf(frame.page_id);
  std::lock_guard<std::mutex> lock(shard.mu);
  SEGDIFF_CHECK_GT(frame.pin_count, 0);
  if (--frame.pin_count == 0) {
    shard.lru.push_front(frame_idx);
    frame.lru_pos = shard.lru.begin();
    frame.in_lru = true;
  }
}

Status BufferPool::FlushFrame(Frame& frame, Shard& shard) {
  if (frame.dirty && frame.page_id != kInvalidPageId) {
    SEGDIFF_RETURN_IF_ERROR(pager_->WritePage(frame.page_id, frame.data.get()));
    frame.dirty = false;
    ++shard.stats.dirty_writebacks;
  }
  return Status::OK();
}

Result<size_t> BufferPool::GrabFrame(Shard& shard) {
  if (!shard.free_frames.empty()) {
    const size_t idx = shard.free_frames.back();
    shard.free_frames.pop_back();
    return idx;
  }
  if (shard.lru.empty()) {
    return Status::Internal("buffer pool exhausted: all frames pinned");
  }
  // Evict the least recently used unpinned frame of this shard.
  const size_t victim = shard.lru.back();
  shard.lru.pop_back();
  Frame& frame = frames_[victim];
  frame.in_lru = false;
  Status flush = FlushFrame(frame, shard);
  if (!flush.ok()) {
    // Write-back failed: the page keeps its dirty contents and returns
    // to the LRU (still cached, still dirty, still evictable), so a
    // later flush can retry; the caller sees the IO error.
    shard.lru.push_back(victim);
    frame.lru_pos = std::prev(shard.lru.end());
    frame.in_lru = true;
    return flush;
  }
  shard.page_table.erase(frame.page_id);
  frame.page_id = kInvalidPageId;
  ++shard.stats.evictions;
  return victim;
}

Result<PageHandle> BufferPool::Fetch(PageId id) {
  Shard& shard = ShardOf(id);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.page_table.find(id);
  if (it != shard.page_table.end()) {
    ++shard.stats.hits;
    const size_t idx = it->second;
    Frame& frame = frames_[idx];
    if (frame.pin_count == 0 && frame.in_lru) {
      shard.lru.erase(frame.lru_pos);
      frame.in_lru = false;
    }
    ++frame.pin_count;
    return PageHandle(this, idx, id, frame.data.get());
  }
  ++shard.stats.misses;
  SEGDIFF_ASSIGN_OR_RETURN(size_t idx, GrabFrame(shard));
  Frame& frame = frames_[idx];
  // The read happens under the shard mutex: concurrent misses in the
  // same shard serialize (a per-frame IO latch would let them overlap,
  // but same-shard miss storms are rare with page-striped shards).
  Status read = pager_->ReadPage(id, frame.data.get());
  if (!read.ok()) {
    shard.free_frames.push_back(idx);
    return read;
  }
  frame.page_id = id;
  frame.pin_count = 1;
  frame.dirty = false;
  shard.page_table[id] = idx;
  return PageHandle(this, idx, id, frame.data.get());
}

Result<PageHandle> BufferPool::AllocatePinned() {
  SEGDIFF_ASSIGN_OR_RETURN(PageId id, pager_->AllocatePage());
  return PinFresh(id);
}

Result<PageHandle> BufferPool::PinFresh(PageId id) {
  Shard& shard = ShardOf(id);
  std::lock_guard<std::mutex> lock(shard.mu);
  return PinFreshLocked(id, shard);
}

Result<PageHandle> BufferPool::PinFreshLocked(PageId id, Shard& shard) {
  if (shard.page_table.count(id) != 0) {
    return Status::Internal("PinFresh on a cached page");
  }
  SEGDIFF_ASSIGN_OR_RETURN(size_t idx, GrabFrame(shard));
  Frame& frame = frames_[idx];
  std::memset(frame.data.get(), 0, kPageSize);
  frame.page_id = id;
  frame.pin_count = 1;
  frame.dirty = true;
  shard.page_table[id] = idx;
  return PageHandle(this, idx, id, frame.data.get());
}

Status BufferPool::FlushAll() {
  for (Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    for (const auto& [page_id, idx] : shard.page_table) {
      (void)page_id;
      SEGDIFF_RETURN_IF_ERROR(FlushFrame(frames_[idx], shard));
    }
  }
  return Status::OK();
}

Status BufferPool::DropAll() {
  for (Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    for (const auto& [page_id, idx] : shard.page_table) {
      (void)page_id;
      if (frames_[idx].pin_count > 0) {
        return Status::Internal("DropAll with pinned pages");
      }
    }
  }
  SEGDIFF_RETURN_IF_ERROR(FlushAll());
  for (Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    for (const auto& [page_id, idx] : shard.page_table) {
      (void)page_id;
      Frame& frame = frames_[idx];
      if (frame.in_lru) {
        shard.lru.erase(frame.lru_pos);
        frame.in_lru = false;
      }
      frame.page_id = kInvalidPageId;
      shard.free_frames.push_back(idx);
    }
    shard.page_table.clear();
  }
  return Status::OK();
}

BufferPoolStats BufferPool::stats() const {
  BufferPoolStats total;
  for (const Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    total.hits += shard.stats.hits;
    total.misses += shard.stats.misses;
    total.evictions += shard.stats.evictions;
    total.dirty_writebacks += shard.stats.dirty_writebacks;
  }
  return total;
}

size_t BufferPool::cached_pages() const {
  size_t total = 0;
  for (const Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    total += shard.page_table.size();
  }
  return total;
}

}  // namespace segdiff
