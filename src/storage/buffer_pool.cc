#include "storage/buffer_pool.h"

#include <cstring>

#include "common/logging.h"

namespace segdiff {

PageHandle& PageHandle::operator=(PageHandle&& other) noexcept {
  if (this != &other) {
    Release();
    pool_ = other.pool_;
    frame_ = other.frame_;
    page_id_ = other.page_id_;
    data_ = other.data_;
    other.pool_ = nullptr;
    other.data_ = nullptr;
  }
  return *this;
}

PageHandle::~PageHandle() { Release(); }

void PageHandle::MarkDirty() {
  SEGDIFF_CHECK(valid());
  pool_->frames_[frame_].dirty = true;
}

void PageHandle::Release() {
  if (pool_ != nullptr) {
    pool_->Unpin(frame_);
    pool_ = nullptr;
    data_ = nullptr;
  }
}

BufferPool::BufferPool(Pager* pager, size_t capacity_pages) : pager_(pager) {
  SEGDIFF_CHECK_GE(capacity_pages, size_t{1});
  frames_.resize(capacity_pages);
  free_frames_.reserve(capacity_pages);
  for (size_t i = 0; i < capacity_pages; ++i) {
    frames_[i].data = std::make_unique<char[]>(kPageSize);
    free_frames_.push_back(capacity_pages - 1 - i);
  }
}

BufferPool::~BufferPool() {
  // Best-effort flush; errors here cannot be reported.
  Status status = FlushAll();
  if (!status.ok()) {
    SEGDIFF_LOG(Error) << "buffer pool flush on destruction failed: "
                       << status.ToString();
  }
}

void BufferPool::Unpin(size_t frame_idx) {
  Frame& frame = frames_[frame_idx];
  SEGDIFF_CHECK_GT(frame.pin_count, 0);
  if (--frame.pin_count == 0) {
    lru_.push_front(frame_idx);
    frame.lru_pos = lru_.begin();
    frame.in_lru = true;
  }
}

Status BufferPool::FlushFrame(Frame& frame) {
  if (frame.dirty && frame.page_id != kInvalidPageId) {
    SEGDIFF_RETURN_IF_ERROR(pager_->WritePage(frame.page_id, frame.data.get()));
    frame.dirty = false;
    ++stats_.dirty_writebacks;
  }
  return Status::OK();
}

Result<size_t> BufferPool::GrabFrame() {
  if (!free_frames_.empty()) {
    const size_t idx = free_frames_.back();
    free_frames_.pop_back();
    return idx;
  }
  if (lru_.empty()) {
    return Status::Internal("buffer pool exhausted: all frames pinned");
  }
  // Evict the least recently used unpinned frame.
  const size_t victim = lru_.back();
  lru_.pop_back();
  Frame& frame = frames_[victim];
  frame.in_lru = false;
  SEGDIFF_RETURN_IF_ERROR(FlushFrame(frame));
  page_table_.erase(frame.page_id);
  frame.page_id = kInvalidPageId;
  ++stats_.evictions;
  return victim;
}

Result<PageHandle> BufferPool::Fetch(PageId id) {
  auto it = page_table_.find(id);
  if (it != page_table_.end()) {
    ++stats_.hits;
    const size_t idx = it->second;
    Frame& frame = frames_[idx];
    if (frame.pin_count == 0 && frame.in_lru) {
      lru_.erase(frame.lru_pos);
      frame.in_lru = false;
    }
    ++frame.pin_count;
    return PageHandle(this, idx, id, frame.data.get());
  }
  ++stats_.misses;
  SEGDIFF_ASSIGN_OR_RETURN(size_t idx, GrabFrame());
  Frame& frame = frames_[idx];
  SEGDIFF_RETURN_IF_ERROR(pager_->ReadPage(id, frame.data.get()));
  frame.page_id = id;
  frame.pin_count = 1;
  frame.dirty = false;
  page_table_[id] = idx;
  return PageHandle(this, idx, id, frame.data.get());
}

Result<PageHandle> BufferPool::AllocatePinned() {
  SEGDIFF_ASSIGN_OR_RETURN(PageId id, pager_->AllocatePage());
  return PinFresh(id);
}

Result<PageHandle> BufferPool::PinFresh(PageId id) {
  if (page_table_.count(id) != 0) {
    return Status::Internal("PinFresh on a cached page");
  }
  SEGDIFF_ASSIGN_OR_RETURN(size_t idx, GrabFrame());
  Frame& frame = frames_[idx];
  std::memset(frame.data.get(), 0, kPageSize);
  frame.page_id = id;
  frame.pin_count = 1;
  frame.dirty = true;
  page_table_[id] = idx;
  return PageHandle(this, idx, id, frame.data.get());
}

Status BufferPool::FlushAll() {
  for (Frame& frame : frames_) {
    SEGDIFF_RETURN_IF_ERROR(FlushFrame(frame));
  }
  return Status::OK();
}

Status BufferPool::DropAll() {
  for (Frame& frame : frames_) {
    if (frame.page_id != kInvalidPageId && frame.pin_count > 0) {
      return Status::Internal("DropAll with pinned pages");
    }
  }
  SEGDIFF_RETURN_IF_ERROR(FlushAll());
  for (size_t i = 0; i < frames_.size(); ++i) {
    Frame& frame = frames_[i];
    if (frame.page_id == kInvalidPageId) {
      continue;
    }
    if (frame.in_lru) {
      lru_.erase(frame.lru_pos);
      frame.in_lru = false;
    }
    page_table_.erase(frame.page_id);
    frame.page_id = kInvalidPageId;
    free_frames_.push_back(i);
  }
  return Status::OK();
}

}  // namespace segdiff
