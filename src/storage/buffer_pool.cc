#include "storage/buffer_pool.h"

#include <algorithm>
#include <cstring>

#include "common/logging.h"
#include "storage/wal.h"

namespace segdiff {

PoolSnapshot::~PoolSnapshot() { pool_->ReleaseSnapshot(epoch_); }

PageHandle& PageHandle::operator=(PageHandle&& other) noexcept {
  if (this != &other) {
    Release();
    pool_ = other.pool_;
    frame_ = other.frame_;
    page_id_ = other.page_id_;
    buffer_ = std::move(other.buffer_);
    data_ = other.data_;
    other.pool_ = nullptr;
    other.data_ = nullptr;
  }
  return *this;
}

PageHandle::~PageHandle() { Release(); }

void PageHandle::MarkDirty() {
  SEGDIFF_CHECK(valid());
  // Snapshot-version handles are frozen history; writing through one is
  // a bug in the caller, not a recoverable condition.
  SEGDIFF_CHECK(frame_ != kNoFrame);
  // The frame is pinned by this handle, so the dirty flag cannot race
  // with eviction; concurrent markers of the same pinned frame are
  // idempotent writes under the shard mutex.
  std::lock_guard<std::mutex> lock(pool_->ShardOf(page_id_).mu);
  BufferPool::Frame& frame = pool_->frames_[frame_];
  frame.dirty = true;
  if (pool_->wal_ != nullptr) {
    // Log-before-mutate: the record covering this change is already
    // appended, so the log's last LSN bounds it from above.
    frame.rec_lsn = pool_->wal_->last_lsn();
  }
}

void PageHandle::Release() {
  if (pool_ != nullptr) {
    if (frame_ != kNoFrame) {
      pool_->Unpin(frame_);
    }
    pool_ = nullptr;
    data_ = nullptr;
    buffer_.reset();
  }
}

BufferPool::BufferPool(Pager* pager, size_t capacity_pages) : pager_(pager) {
  SEGDIFF_CHECK_GE(capacity_pages, size_t{1});
  const size_t num_shards = std::max(
      size_t{1}, std::min(kMaxShards, capacity_pages / kMinFramesPerShard));
  frames_.resize(capacity_pages);
  shards_ = std::vector<Shard>(num_shards);
  // Deal the frames out round-robin; each shard's free list is its whole
  // slice of the pool.
  for (size_t i = 0; i < capacity_pages; ++i) {
    frames_[i].data = std::shared_ptr<char[]>(new char[kPageSize]);
    shards_[i % num_shards].free_frames.push_back(i);
  }
  for (Shard& shard : shards_) {
    // Matches the historical "lowest frame grabbed first" order so the
    // single-shard case reproduces the original pool exactly.
    std::reverse(shard.free_frames.begin(), shard.free_frames.end());
  }
}

BufferPool::~BufferPool() {
  if (abandoned_) return;
  // Best-effort flush; errors here cannot be reported.
  Status status = FlushAll();
  if (!status.ok()) {
    SEGDIFF_LOG(Error) << "buffer pool flush on destruction failed: "
                       << status.ToString();
  }
}

void BufferPool::Unpin(size_t frame_idx) {
  Frame& frame = frames_[frame_idx];
  // The frame is pinned (by the releasing handle), so its page_id is
  // stable and names the owning shard.
  Shard& shard = ShardOf(frame.page_id);
  std::lock_guard<std::mutex> lock(shard.mu);
  SEGDIFF_CHECK_GT(frame.pin_count, 0);
  if (--frame.pin_count == 0) {
    shard.lru.push_front(frame_idx);
    frame.lru_pos = shard.lru.begin();
    frame.in_lru = true;
  }
}

Status BufferPool::FlushFrame(Frame& frame, Shard& shard, bool log_image) {
  if (frame.dirty && frame.page_id != kInvalidPageId) {
    if (log_image && wal_ != nullptr) {
      // Undo-before-steal: durably log the page's PRIOR on-disk bytes
      // before overwriting them. If the process dies after this write
      // but before the next checkpoint, the stolen page survives on
      // disk while the catalog still describes the old checkpoint;
      // recovery rolls the page back to this image (the oldest one per
      // page = its checkpoint-era content) so logical replay starts
      // from an exact checkpoint state. Raw read: the prior bytes may
      // themselves be a torn page left by an earlier crash.
      std::unique_ptr<char[]> prior(new char[kPageSize]);
      SEGDIFF_RETURN_IF_ERROR(
          pager_->ReadPageRaw(frame.page_id, prior.get()));
      SEGDIFF_ASSIGN_OR_RETURN(
          uint64_t image_lsn,
          wal_->AppendUndoImage(frame.page_id, prior.get(), kPageCapacity));
      SEGDIFF_RETURN_IF_ERROR(wal_->EnsureDurable(image_lsn));
    }
    if (wal_ != nullptr) {
      // WAL-before-data: the log must be durable through the last
      // record covering this frame before its bytes overwrite the
      // file. Usually a no-op — the undo image appended above (or by
      // FlushAll's batched pass) postdates rec_lsn, so its sync
      // already covered it — but enforced here directly rather than
      // relied on transitively.
      SEGDIFF_RETURN_IF_ERROR(wal_->EnsureDurable(frame.rec_lsn));
    }
    SEGDIFF_RETURN_IF_ERROR(pager_->WritePage(frame.page_id, frame.data.get()));
    frame.dirty = false;
    frame.rec_lsn = 0;
    ++shard.stats.dirty_writebacks;
  }
  return Status::OK();
}

Result<size_t> BufferPool::GrabFrame(Shard& shard) {
  if (!shard.free_frames.empty()) {
    const size_t idx = shard.free_frames.back();
    shard.free_frames.pop_back();
    return idx;
  }
  if (shard.lru.empty()) {
    return Status::Internal("buffer pool exhausted: all frames pinned");
  }
  // Evict the least recently used unpinned frame of this shard.
  const size_t victim = shard.lru.back();
  shard.lru.pop_back();
  Frame& frame = frames_[victim];
  frame.in_lru = false;
  Status flush = FlushFrame(frame, shard, /*log_image=*/true);
  if (!flush.ok()) {
    // Write-back failed: the page keeps its dirty contents and returns
    // to the LRU (still cached, still dirty, still evictable), so a
    // later flush can retry; the caller sees the IO error.
    shard.lru.push_back(victim);
    frame.lru_pos = std::prev(shard.lru.end());
    frame.in_lru = true;
    return flush;
  }
  shard.page_table.erase(frame.page_id);
  frame.page_id = kInvalidPageId;
  ++shard.stats.evictions;
  // An evicted frame's buffer may still be shared with late-releasing
  // handles; the next occupant must not scribble over their bytes.
  if (frame.data.use_count() > 1) {
    frame.data = std::shared_ptr<char[]>(new char[kPageSize]);
  }
  return victim;
}

Result<size_t> BufferPool::PinFrameLocked(PageId id, Shard& shard) {
  auto it = shard.page_table.find(id);
  if (it != shard.page_table.end()) {
    ++shard.stats.hits;
    const size_t idx = it->second;
    Frame& frame = frames_[idx];
    if (frame.pin_count == 0 && frame.in_lru) {
      shard.lru.erase(frame.lru_pos);
      frame.in_lru = false;
    }
    ++frame.pin_count;
    return idx;
  }
  ++shard.stats.misses;
  SEGDIFF_ASSIGN_OR_RETURN(size_t idx, GrabFrame(shard));
  Frame& frame = frames_[idx];
  // The read happens under the shard mutex: concurrent misses in the
  // same shard serialize (a per-frame IO latch would let them overlap,
  // but same-shard miss storms are rare with page-striped shards).
  Status read = pager_->ReadPage(id, frame.data.get());
  if (!read.ok()) {
    shard.free_frames.push_back(idx);
    ++shard.stats.read_failures;
    return read;
  }
  frame.page_id = id;
  frame.pin_count = 1;
  frame.dirty = false;
  frame.rec_lsn = 0;
  shard.page_table[id] = idx;
  return idx;
}

Result<PageHandle> BufferPool::Fetch(PageId id) {
  Shard& shard = ShardOf(id);
  std::lock_guard<std::mutex> lock(shard.mu);
  SEGDIFF_ASSIGN_OR_RETURN(size_t idx, PinFrameLocked(id, shard));
  return PageHandle(this, idx, id, frames_[idx].data);
}

Result<PageHandle> BufferPool::Fetch(PageId id, const PoolSnapshot* snapshot) {
  if (snapshot == nullptr) return Fetch(id);
  Shard& shard = ShardOf(id);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.versions.find(id);
  if (it != shard.versions.end()) {
    // First version at-or-after the snapshot's epoch is the page's
    // content as of snapshot time.
    for (const PageVersion& version : it->second) {
      if (version.hi >= snapshot->epoch()) {
        return PageHandle(this, PageHandle::kNoFrame, id, version.image);
      }
    }
  }
  // No covering version: the page is unchanged since the snapshot (any
  // later write would have preserved a version first), so the live
  // frame — or disk — holds exactly the snapshot's bytes. Pinning must
  // happen under the SAME mutex hold as the version lookup: dropping
  // the lock in between would let a concurrent FetchMut preserve the
  // pre-image, swap the frame's buffer, and start mutating it before
  // the reader pins — the reader would then share the in-flight
  // mutable buffer and see torn or post-snapshot bytes. Pinned here,
  // the handle shares the frame's current (still pre-image) buffer,
  // and a later FetchMut COW-swaps the frame away from it, leaving the
  // reader on the immutable copy.
  SEGDIFF_ASSIGN_OR_RETURN(size_t idx, PinFrameLocked(id, shard));
  return PageHandle(this, idx, id, frames_[idx].data);
}

Result<PageHandle> BufferPool::FetchMut(PageId id) {
  Shard& shard = ShardOf(id);
  std::lock_guard<std::mutex> lock(shard.mu);
  SEGDIFF_ASSIGN_OR_RETURN(size_t idx, PinFrameLocked(id, shard));
  Frame& frame = frames_[idx];
  PreserveVersionLocked(shard, frame);
  // The handle is built after the redirect, so it shares the frame's
  // fresh writable buffer, never the frozen version.
  return PageHandle(this, idx, id, frame.data);
}

void BufferPool::PreserveVersionLocked(Shard& shard, Frame& frame) {
  const uint64_t max_live = max_live_epoch_.load(std::memory_order_acquire);
  if (max_live == 0) return;
  auto it = shard.versions.find(frame.page_id);
  uint64_t last_hi = 0;
  if (it != shard.versions.end() && !it->second.empty()) {
    last_hi = it->second.back().hi;
  }
  // Covered already: every live snapshot either has a version at or
  // above its epoch, or was created after the last write to this page.
  if (max_live <= last_hi) return;
  // Move the current buffer into history (open reader handles keep
  // sharing it, now-immutable) and give the frame a fresh copy for the
  // caller's write.
  auto fresh = std::shared_ptr<char[]>(new char[kPageSize]);
  std::memcpy(fresh.get(), frame.data.get(), kPageSize);
  std::vector<PageVersion>& list =
      it != shard.versions.end() ? it->second : shard.versions[frame.page_id];
  list.push_back(PageVersion{epoch_counter_.load(std::memory_order_acquire),
                             std::move(frame.data)});
  frame.data = std::move(fresh);
  ++shard.stats.cow_copies;
}

std::shared_ptr<const PoolSnapshot> BufferPool::CreateSnapshot() {
  std::lock_guard<std::mutex> lock(snap_mu_);
  const uint64_t epoch = epoch_counter_.fetch_add(1) + 1;
  live_epochs_.insert(epoch);
  // The counter is monotone, so a new snapshot is always the max.
  max_live_epoch_.store(epoch, std::memory_order_release);
  return std::shared_ptr<const PoolSnapshot>(new PoolSnapshot(this, epoch));
}

void BufferPool::ReleaseSnapshot(uint64_t epoch) {
  std::set<uint64_t> live;
  {
    std::lock_guard<std::mutex> lock(snap_mu_);
    auto it = live_epochs_.find(epoch);
    if (it != live_epochs_.end()) live_epochs_.erase(it);
    max_live_epoch_.store(
        live_epochs_.empty() ? 0 : *live_epochs_.rbegin(),
        std::memory_order_release);
    live.insert(live_epochs_.begin(), live_epochs_.end());
  }
  // Garbage-collect versions no live snapshot can reach. An entry
  // covers epochs in (previous hi, hi]; it survives iff a live epoch
  // falls in that range.
  for (Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    if (live.empty()) {
      shard.versions.clear();
      continue;
    }
    for (auto it = shard.versions.begin(); it != shard.versions.end();) {
      std::vector<PageVersion>& list = it->second;
      std::vector<PageVersion> kept;
      uint64_t prev = 0;
      for (PageVersion& version : list) {
        auto first_live = live.upper_bound(prev);
        if (first_live != live.end() && *first_live <= version.hi) {
          kept.push_back(std::move(version));
        }
        prev = version.hi;
      }
      if (kept.empty()) {
        it = shard.versions.erase(it);
      } else {
        it->second = std::move(kept);
        ++it;
      }
    }
  }
}

Result<PageHandle> BufferPool::AllocatePinned() {
  SEGDIFF_ASSIGN_OR_RETURN(PageId id, pager_->AllocatePage());
  return PinFresh(id);
}

Result<PageHandle> BufferPool::PinFresh(PageId id) {
  Shard& shard = ShardOf(id);
  std::lock_guard<std::mutex> lock(shard.mu);
  return PinFreshLocked(id, shard);
}

Result<PageHandle> BufferPool::PinFreshLocked(PageId id, Shard& shard) {
  if (shard.page_table.count(id) != 0) {
    return Status::Internal("PinFresh on a cached page");
  }
  SEGDIFF_ASSIGN_OR_RETURN(size_t idx, GrabFrame(shard));
  Frame& frame = frames_[idx];
  std::memset(frame.data.get(), 0, kPageSize);
  frame.page_id = id;
  frame.pin_count = 1;
  frame.dirty = true;
  frame.rec_lsn = wal_ != nullptr ? wal_->last_lsn() : 0;
  shard.page_table[id] = idx;
  return PageHandle(this, idx, id, frame.data);
}

Status BufferPool::FlushAll() {
  for (Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    if (wal_ != nullptr) {
      // Same undo-before-steal rule as eviction, but batched: log every
      // dirty page's prior on-disk bytes, force the log durable once,
      // then write the pages. A crash between any of the writes and the
      // checkpoint's header sync then rolls back cleanly instead of
      // leaving a file that is half old checkpoint, half new.
      std::unique_ptr<char[]> prior(new char[kPageSize]);
      uint64_t last_image_lsn = 0;
      for (const auto& [page_id, idx] : shard.page_table) {
        const Frame& frame = frames_[idx];
        if (!frame.dirty || frame.page_id == kInvalidPageId) continue;
        SEGDIFF_RETURN_IF_ERROR(pager_->ReadPageRaw(page_id, prior.get()));
        SEGDIFF_ASSIGN_OR_RETURN(
            last_image_lsn,
            wal_->AppendUndoImage(page_id, prior.get(), kPageCapacity));
      }
      SEGDIFF_RETURN_IF_ERROR(wal_->EnsureDurable(last_image_lsn));
    }
    for (const auto& [page_id, idx] : shard.page_table) {
      (void)page_id;
      SEGDIFF_RETURN_IF_ERROR(
          FlushFrame(frames_[idx], shard, /*log_image=*/false));
    }
  }
  return Status::OK();
}

Status BufferPool::DropAll() {
  for (Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    for (const auto& [page_id, idx] : shard.page_table) {
      (void)page_id;
      if (frames_[idx].pin_count > 0) {
        return Status::Internal("DropAll with pinned pages");
      }
    }
  }
  SEGDIFF_RETURN_IF_ERROR(FlushAll());
  for (Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    for (const auto& [page_id, idx] : shard.page_table) {
      (void)page_id;
      Frame& frame = frames_[idx];
      if (frame.in_lru) {
        shard.lru.erase(frame.lru_pos);
        frame.in_lru = false;
      }
      frame.page_id = kInvalidPageId;
      shard.free_frames.push_back(idx);
    }
    shard.page_table.clear();
  }
  return Status::OK();
}

BufferPoolStats BufferPool::stats() const {
  BufferPoolStats total;
  for (const Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    total.hits += shard.stats.hits;
    total.misses += shard.stats.misses;
    total.evictions += shard.stats.evictions;
    total.dirty_writebacks += shard.stats.dirty_writebacks;
    total.cow_copies += shard.stats.cow_copies;
    total.read_failures += shard.stats.read_failures;
  }
  return total;
}

size_t BufferPool::cached_pages() const {
  size_t total = 0;
  for (const Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    total += shard.page_table.size();
  }
  return total;
}

}  // namespace segdiff
