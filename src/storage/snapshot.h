// Database snapshots: a consistent point-in-time view for readers that
// run concurrently with streaming ingest.
//
// A DatabaseSnapshot pairs a buffer-pool snapshot epoch (page-level
// copy-on-write pre-images; see storage/buffer_pool.h) with a frozen
// copy of every table's logical position: its heap meta (first/last
// page, record and page counts) and its zone map. Together they pin the
// exact set of rows visible when the snapshot was taken:
//
//   - the frozen heap meta bounds the page-chain walk and derives the
//     tail page's record count, so rows appended later are invisible
//     even before their pages diverge;
//   - the pool snapshot serves pre-images of any page the writer has
//     touched since, so rows the walk does visit read back exactly as
//     they were;
//   - the frozen zone map prunes against snapshot-time statistics, so
//     pruning decisions stay consistent with the rows being scanned.
//
// Snapshots are cheap (one pool epoch + per-table metadata copies, no
// page copying up front) and must be taken at an operation boundary
// with no concurrent writer — the engines take theirs under the ingest
// mutex. They hold no pinned pages, so holding one across a long query
// never starves the pool; its only cost is deferring version GC.

#ifndef SEGDIFF_STORAGE_SNAPSHOT_H_
#define SEGDIFF_STORAGE_SNAPSHOT_H_

#include <map>
#include <memory>
#include <string>
#include <utility>

#include "storage/buffer_pool.h"
#include "storage/heap_file.h"
#include "storage/zone_map.h"

namespace segdiff {

/// Frozen per-table state. The columnar portion needs no freezing: its
/// segments are immutable once written and only compaction (which never
/// runs concurrently with ingest) creates new ones.
struct TableSnapshotView {
  HeapFileMeta heap_meta;
  /// Zone map as of the snapshot, or null (unsupported schema / not yet
  /// built). Shared so copying views stays cheap.
  std::shared_ptr<const ZoneMap> zone_map;
};

/// The whole-database snapshot handed to scan operators. Movable and
/// copyable (copies share the same pool epoch); must not outlive the
/// Database that created it.
class DatabaseSnapshot {
 public:
  DatabaseSnapshot() = default;

  /// The view of `table_name`, or nullptr when the table did not exist
  /// at snapshot time.
  const TableSnapshotView* TableView(const std::string& table_name) const {
    auto it = tables_.find(table_name);
    return it == tables_.end() ? nullptr : &it->second;
  }

  /// The buffer-pool epoch backing page reads; null only for a
  /// default-constructed (empty) snapshot.
  const PoolSnapshot* pool_snapshot() const { return pool_snap_.get(); }

 private:
  friend class Database;

  std::shared_ptr<const PoolSnapshot> pool_snap_;
  std::map<std::string, TableSnapshotView> tables_;
};

}  // namespace segdiff

#endif  // SEGDIFF_STORAGE_SNAPSHOT_H_
