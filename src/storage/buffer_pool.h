// LRU buffer pool over a Pager, with copy-on-write page snapshots.
//
// All page access in minidb goes through the pool, which pins frames via
// RAII PageHandles. DropAll() flushes and evicts everything — the repo's
// stand-in for the paper's "operating system cache is flushed before
// every query" protocol (Section 6); leaving the pool warm models the
// "system cache available" runs (Section 6.4).
//
// Thread safety: the pool is striped into shards, each owning a fixed
// slice of the frames plus its own mutex, LRU list, free list, and page
// table; a page lives in the shard `page_id % num_shards`, so concurrent
// readers of different pages rarely contend. Fetch/PinFresh/Allocate and
// handle release are safe from any thread. FlushAll/DropAll lock shards
// one at a time and must not race with concurrent fetches (they are
// control-plane operations, called between queries). Small pools
// (< kMinFramesPerShard pages) collapse to a single shard, preserving
// the exact single-threaded eviction semantics the paper experiments
// rely on.
//
// Snapshots (concurrent ingest + query): CreateSnapshot() freezes a
// point-in-time view at an epoch. Writers fetch pages they will mutate
// through FetchMut(), which — when a snapshot is live and the page has
// no version covering it yet — moves the frame's current buffer into a
// per-page version list and gives the frame a fresh copy before the
// write (copy-on-write, one copy per page per snapshot epoch at most).
// Readers fetch through Fetch(id, snapshot): a version covering the
// snapshot's epoch serves a frozen, unpinned buffer; otherwise the page
// is unchanged since the snapshot and the live frame (or disk) is
// correct. Versions are garbage-collected when snapshots release.
//
// Snapshot discipline (callers must uphold; the engines do via their
// ingest mutex):
//   - CreateSnapshot() must not race with writes, and no FetchMut
//     handle may be outstanding across it (snapshots are taken at
//     operation boundaries).
//   - Readers that run concurrently with ingest must read through a
//     snapshot; plain Fetch during concurrent writes sees live bytes.
//
// Undo-before-steal: when a WAL is attached (set_wal), any write of a
// dirty frame back to the data file between checkpoints — an eviction
// steal or a checkpoint's own FlushAll — first durably logs the page's
// PRIOR on-disk bytes (a kUndoImage record). Recovery rolls every
// imaged page back to its oldest image, i.e. its content at the last
// completed checkpoint, so logical replay always starts from an exact
// checkpoint state even when a crash preserves unsynced data-file
// writes (kill -9, power loss after the page cache drained).

#ifndef SEGDIFF_STORAGE_BUFFER_POOL_H_
#define SEGDIFF_STORAGE_BUFFER_POOL_H_

#include <atomic>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <set>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "storage/page.h"
#include "storage/pager.h"

namespace segdiff {

class BufferPool;
class Wal;

/// A frozen point-in-time view of the pool, identified by its epoch.
/// Obtained from BufferPool::CreateSnapshot(); releasing the last
/// reference unblocks garbage collection of the page versions it pins.
/// Must not outlive the pool.
class PoolSnapshot {
 public:
  ~PoolSnapshot();
  PoolSnapshot(const PoolSnapshot&) = delete;
  PoolSnapshot& operator=(const PoolSnapshot&) = delete;

  uint64_t epoch() const { return epoch_; }

 private:
  friend class BufferPool;
  PoolSnapshot(BufferPool* pool, uint64_t epoch)
      : pool_(pool), epoch_(epoch) {}

  BufferPool* pool_;
  const uint64_t epoch_;
};

/// Pins one frame (or references one frozen snapshot version) for the
/// handle's lifetime; data() is kPageSize bytes. Snapshot-backed
/// handles are read-only: MarkDirty on one is a programming error.
class PageHandle {
 public:
  PageHandle() = default;
  PageHandle(PageHandle&& other) noexcept { *this = std::move(other); }
  PageHandle& operator=(PageHandle&& other) noexcept;
  PageHandle(const PageHandle&) = delete;
  PageHandle& operator=(const PageHandle&) = delete;
  ~PageHandle();

  bool valid() const { return pool_ != nullptr; }
  PageId page_id() const { return page_id_; }
  char* data() { return data_; }
  const char* data() const { return data_; }

  /// Marks the page as modified so eviction/flush writes it back, and
  /// stamps the frame with the WAL's last LSN (the record covering this
  /// change was logged before the mutation).
  void MarkDirty();

  /// Unpins early (also done by the destructor).
  void Release();

 private:
  friend class BufferPool;
  /// Sentinel frame index for snapshot-version-backed handles.
  static constexpr size_t kNoFrame = static_cast<size_t>(-1);

  PageHandle(BufferPool* pool, size_t frame, PageId page_id,
             std::shared_ptr<char[]> buffer)
      : pool_(pool),
        frame_(frame),
        page_id_(page_id),
        buffer_(std::move(buffer)),
        data_(buffer_.get()) {}

  BufferPool* pool_ = nullptr;
  size_t frame_ = 0;  ///< global frame index, or kNoFrame (snapshot)
  PageId page_id_ = kInvalidPageId;
  /// Shares ownership of the bytes: a frame whose buffer is moved into
  /// a version list (or a frame reused after eviction) never yanks the
  /// memory out from under an open handle.
  std::shared_ptr<char[]> buffer_;
  char* data_ = nullptr;
};

/// Hit/miss counters for cache-behaviour experiments. Aggregated over
/// the shards; a consistent snapshot requires no concurrent fetches.
struct BufferPoolStats {
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t evictions = 0;
  uint64_t dirty_writebacks = 0;
  uint64_t cow_copies = 0;  ///< page versions preserved for snapshots
  uint64_t read_failures = 0;  ///< miss-path reads that failed (IO/corrupt)
};

/// Fixed-capacity LRU page cache, sharded for concurrent readers.
class BufferPool {
 public:
  /// Shards with fewer than this many frames are not worth striping;
  /// pools smaller than this use one shard (exact LRU, as before).
  static constexpr size_t kMinFramesPerShard = 16;
  static constexpr size_t kMaxShards = 16;

  /// `pager` must outlive the pool. `capacity_pages` >= 1.
  BufferPool(Pager* pager, size_t capacity_pages);
  ~BufferPool();
  BufferPool(const BufferPool&) = delete;
  BufferPool& operator=(const BufferPool&) = delete;

  /// Returns a pinned handle for page `id`, reading it on miss. A miss
  /// goes through Pager::ReadPage, which verifies the page checksum —
  /// a corrupted page surfaces here as Status::Corruption naming the
  /// page, never as a cached frame of garbage. Fails with a
  /// ResourceExhausted-like Internal error when every frame of the
  /// page's shard is pinned.
  Result<PageHandle> Fetch(PageId id);

  /// Fetch for readers on a snapshot: serves the frozen version of the
  /// page when one covers `snapshot`'s epoch, else the live page (which
  /// is then unchanged since the snapshot). Null snapshot = plain
  /// Fetch.
  Result<PageHandle> Fetch(PageId id, const PoolSnapshot* snapshot);

  /// Fetch for writers: identical to Fetch, plus the copy-on-write
  /// redirect that preserves the pre-image for live snapshots before
  /// the caller mutates the page. Every code path that will MarkDirty
  /// the handle must use this.
  Result<PageHandle> FetchMut(PageId id);

  /// Allocates a fresh page via the pager and returns it pinned and
  /// zeroed (already marked dirty).
  Result<PageHandle> AllocatePinned();

  /// Pins a freshly allocated (zeroed, never-fetched) page `id` — the
  /// extent-allocation path. The page must not already be cached.
  /// Fresh pages are invisible to existing snapshots (nothing reachable
  /// from a snapshot's frozen metadata points at them), so they need no
  /// versioning.
  Result<PageHandle> PinFresh(PageId id);

  /// Freezes the current state as a new snapshot epoch. See the class
  /// comment for the caller discipline.
  std::shared_ptr<const PoolSnapshot> CreateSnapshot();

  Pager* pager() { return pager_; }

  /// Attaches the write-ahead log for WAL-before-data on dirty-frame
  /// steals and LSN stamping. Non-owning; may be null (no WAL).
  void set_wal(Wal* wal) { wal_ = wal; }
  Wal* wal() const { return wal_; }

  /// Writes back all dirty frames (keeps contents cached). With a WAL
  /// attached, undo images of the pages' prior on-disk bytes are made
  /// durable first (batched, one log sync per shard) — see the class
  /// comment.
  Status FlushAll();

  /// Flushes then evicts every unpinned frame: the cold-cache knob.
  /// Fails if any frame is still pinned.
  Status DropAll();

  /// Marks the pool as abandoned: the destructor skips its best-effort
  /// FlushAll. Set when the owning database was never successfully
  /// opened or was explicitly abandoned — flushing then could write
  /// garbage (or an empty catalog) over a store that recovery could
  /// otherwise still salvage.
  void set_abandoned() { abandoned_ = true; }

  BufferPoolStats stats() const;
  size_t capacity() const { return frames_.size(); }
  size_t cached_pages() const;
  size_t num_shards() const { return shards_.size(); }

 private:
  friend class PageHandle;
  friend class PoolSnapshot;

  struct Frame {
    PageId page_id = kInvalidPageId;
    int pin_count = 0;
    bool dirty = false;
    /// WAL LSN of the last record covering a change to this frame;
    /// FlushFrame forces the log durable through it before writing the
    /// page back (WAL-before-data). In practice the sync is a no-op:
    /// the undo image logged by the same flush postdates rec_lsn, so
    /// its EnsureDurable already covered it.
    uint64_t rec_lsn = 0;
    std::shared_ptr<char[]> data;
    std::list<size_t>::iterator lru_pos;  // valid iff in_lru
    bool in_lru = false;
  };

  /// One frozen pre-image of a page. Covers every snapshot epoch in
  /// (previous entry's hi, hi]: it was the page's content when the
  /// first post-`hi`-snapshot write arrived.
  struct PageVersion {
    uint64_t hi = 0;
    std::shared_ptr<char[]> image;
  };

  /// One stripe: a slice of frames_ plus all bookkeeping for the pages
  /// that hash to it. Everything below `mu` is guarded by it.
  struct Shard {
    mutable std::mutex mu;
    std::vector<size_t> free_frames;      ///< global frame indices
    std::list<size_t> lru;                ///< front == most recently used
    std::unordered_map<PageId, size_t> page_table;
    /// Frozen pre-images, per page, in increasing-`hi` order.
    std::unordered_map<PageId, std::vector<PageVersion>> versions;
    BufferPoolStats stats;
  };

  Shard& ShardOf(PageId id) { return shards_[id % shards_.size()]; }
  const Shard& ShardOf(PageId id) const {
    return shards_[id % shards_.size()];
  }

  void Unpin(size_t frame);
  Status FlushFrame(Frame& frame, Shard& shard, bool log_image);
  /// Pins page `id` in `shard` (cache hit or miss+read) and returns the
  /// frame index. Caller holds shard.mu; the snapshot read path relies
  /// on version lookup and this pin happening under one mutex hold.
  Result<size_t> PinFrameLocked(PageId id, Shard& shard);
  /// Finds a frame for a new page in `shard`: free frame or LRU victim.
  /// Caller holds shard.mu.
  Result<size_t> GrabFrame(Shard& shard);
  Result<PageHandle> PinFreshLocked(PageId id, Shard& shard);
  /// The copy-on-write redirect: preserves `frame`'s buffer as a
  /// version when a live snapshot still needs its current content.
  /// Caller holds shard.mu and is about to hand out a mutable handle.
  void PreserveVersionLocked(Shard& shard, Frame& frame);
  void ReleaseSnapshot(uint64_t epoch);

  Pager* pager_;
  Wal* wal_ = nullptr;  ///< non-owning; see set_wal
  std::vector<Frame> frames_;
  std::vector<Shard> shards_;
  bool abandoned_ = false;

  /// Snapshot bookkeeping. epoch_counter_ only grows; max_live_epoch_
  /// is the largest live epoch (0 = none), read lock-free on the write
  /// fast path.
  std::mutex snap_mu_;
  std::multiset<uint64_t> live_epochs_;
  std::atomic<uint64_t> epoch_counter_{0};
  std::atomic<uint64_t> max_live_epoch_{0};
};

}  // namespace segdiff

#endif  // SEGDIFF_STORAGE_BUFFER_POOL_H_
