// LRU buffer pool over a Pager.
//
// All page access in minidb goes through the pool, which pins frames via
// RAII PageHandles. DropAll() flushes and evicts everything — the repo's
// stand-in for the paper's "operating system cache is flushed before
// every query" protocol (Section 6); leaving the pool warm models the
// "system cache available" runs (Section 6.4).

#ifndef SEGDIFF_STORAGE_BUFFER_POOL_H_
#define SEGDIFF_STORAGE_BUFFER_POOL_H_

#include <cstdint>
#include <list>
#include <memory>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "storage/page.h"
#include "storage/pager.h"

namespace segdiff {

class BufferPool;

/// Pins one frame for the handle's lifetime; data() is kPageSize bytes.
class PageHandle {
 public:
  PageHandle() = default;
  PageHandle(PageHandle&& other) noexcept { *this = std::move(other); }
  PageHandle& operator=(PageHandle&& other) noexcept;
  PageHandle(const PageHandle&) = delete;
  PageHandle& operator=(const PageHandle&) = delete;
  ~PageHandle();

  bool valid() const { return pool_ != nullptr; }
  PageId page_id() const { return page_id_; }
  char* data() { return data_; }
  const char* data() const { return data_; }

  /// Marks the page as modified so eviction/flush writes it back.
  void MarkDirty();

  /// Unpins early (also done by the destructor).
  void Release();

 private:
  friend class BufferPool;
  PageHandle(BufferPool* pool, size_t frame, PageId page_id, char* data)
      : pool_(pool), frame_(frame), page_id_(page_id), data_(data) {}

  BufferPool* pool_ = nullptr;
  size_t frame_ = 0;
  PageId page_id_ = kInvalidPageId;
  char* data_ = nullptr;
};

/// Hit/miss counters for cache-behaviour experiments.
struct BufferPoolStats {
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t evictions = 0;
  uint64_t dirty_writebacks = 0;
};

/// Fixed-capacity LRU page cache. Not thread-safe (minidb is
/// single-threaded by design, like the paper's workload).
class BufferPool {
 public:
  /// `pager` must outlive the pool. `capacity_pages` >= 1.
  BufferPool(Pager* pager, size_t capacity_pages);
  ~BufferPool();
  BufferPool(const BufferPool&) = delete;
  BufferPool& operator=(const BufferPool&) = delete;

  /// Returns a pinned handle for page `id`, reading it on miss. Fails
  /// with ResourceExhausted-like Internal error when every frame is
  /// pinned.
  Result<PageHandle> Fetch(PageId id);

  /// Allocates a fresh page via the pager and returns it pinned and
  /// zeroed (already marked dirty).
  Result<PageHandle> AllocatePinned();

  /// Pins a freshly allocated (zeroed, never-fetched) page `id` — the
  /// extent-allocation path. The page must not already be cached.
  Result<PageHandle> PinFresh(PageId id);

  Pager* pager() { return pager_; }

  /// Writes back all dirty frames (keeps contents cached).
  Status FlushAll();

  /// Flushes then evicts every unpinned frame: the cold-cache knob.
  /// Fails if any frame is still pinned.
  Status DropAll();

  const BufferPoolStats& stats() const { return stats_; }
  size_t capacity() const { return frames_.size(); }
  size_t cached_pages() const { return page_table_.size(); }

 private:
  friend class PageHandle;

  struct Frame {
    PageId page_id = kInvalidPageId;
    int pin_count = 0;
    bool dirty = false;
    std::unique_ptr<char[]> data;
    std::list<size_t>::iterator lru_pos;  // valid iff pin_count == 0
    bool in_lru = false;
  };

  void Unpin(size_t frame);
  Status FlushFrame(Frame& frame);
  /// Finds a frame for a new page: free frame or LRU victim.
  Result<size_t> GrabFrame();

  Pager* pager_;
  std::vector<Frame> frames_;
  std::vector<size_t> free_frames_;
  std::list<size_t> lru_;  ///< front == most recently used
  std::unordered_map<PageId, size_t> page_table_;
  BufferPoolStats stats_;
};

}  // namespace segdiff

#endif  // SEGDIFF_STORAGE_BUFFER_POOL_H_
