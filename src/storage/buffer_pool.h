// LRU buffer pool over a Pager.
//
// All page access in minidb goes through the pool, which pins frames via
// RAII PageHandles. DropAll() flushes and evicts everything — the repo's
// stand-in for the paper's "operating system cache is flushed before
// every query" protocol (Section 6); leaving the pool warm models the
// "system cache available" runs (Section 6.4).
//
// Thread safety: the pool is striped into shards, each owning a fixed
// slice of the frames plus its own mutex, LRU list, free list, and page
// table; a page lives in the shard `page_id % num_shards`, so concurrent
// readers of different pages rarely contend. Fetch/PinFresh/Allocate and
// handle release are safe from any thread. FlushAll/DropAll lock shards
// one at a time and must not race with concurrent fetches (they are
// control-plane operations, called between queries). Small pools
// (< kMinFramesPerShard pages) collapse to a single shard, preserving
// the exact single-threaded eviction semantics the paper experiments
// rely on.

#ifndef SEGDIFF_STORAGE_BUFFER_POOL_H_
#define SEGDIFF_STORAGE_BUFFER_POOL_H_

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "storage/page.h"
#include "storage/pager.h"

namespace segdiff {

class BufferPool;

/// Pins one frame for the handle's lifetime; data() is kPageSize bytes.
class PageHandle {
 public:
  PageHandle() = default;
  PageHandle(PageHandle&& other) noexcept { *this = std::move(other); }
  PageHandle& operator=(PageHandle&& other) noexcept;
  PageHandle(const PageHandle&) = delete;
  PageHandle& operator=(const PageHandle&) = delete;
  ~PageHandle();

  bool valid() const { return pool_ != nullptr; }
  PageId page_id() const { return page_id_; }
  char* data() { return data_; }
  const char* data() const { return data_; }

  /// Marks the page as modified so eviction/flush writes it back.
  void MarkDirty();

  /// Unpins early (also done by the destructor).
  void Release();

 private:
  friend class BufferPool;
  PageHandle(BufferPool* pool, size_t frame, PageId page_id, char* data)
      : pool_(pool), frame_(frame), page_id_(page_id), data_(data) {}

  BufferPool* pool_ = nullptr;
  size_t frame_ = 0;  ///< global frame index (shard derived from it)
  PageId page_id_ = kInvalidPageId;
  char* data_ = nullptr;
};

/// Hit/miss counters for cache-behaviour experiments. Aggregated over
/// the shards; a consistent snapshot requires no concurrent fetches.
struct BufferPoolStats {
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t evictions = 0;
  uint64_t dirty_writebacks = 0;
};

/// Fixed-capacity LRU page cache, sharded for concurrent readers.
class BufferPool {
 public:
  /// Shards with fewer than this many frames are not worth striping;
  /// pools smaller than this use one shard (exact LRU, as before).
  static constexpr size_t kMinFramesPerShard = 16;
  static constexpr size_t kMaxShards = 16;

  /// `pager` must outlive the pool. `capacity_pages` >= 1.
  BufferPool(Pager* pager, size_t capacity_pages);
  ~BufferPool();
  BufferPool(const BufferPool&) = delete;
  BufferPool& operator=(const BufferPool&) = delete;

  /// Returns a pinned handle for page `id`, reading it on miss. A miss
  /// goes through Pager::ReadPage, which verifies the page checksum —
  /// a corrupted page surfaces here as Status::Corruption naming the
  /// page, never as a cached frame of garbage. Fails with a
  /// ResourceExhausted-like Internal error when every frame of the
  /// page's shard is pinned.
  Result<PageHandle> Fetch(PageId id);

  /// Allocates a fresh page via the pager and returns it pinned and
  /// zeroed (already marked dirty).
  Result<PageHandle> AllocatePinned();

  /// Pins a freshly allocated (zeroed, never-fetched) page `id` — the
  /// extent-allocation path. The page must not already be cached.
  Result<PageHandle> PinFresh(PageId id);

  Pager* pager() { return pager_; }

  /// Writes back all dirty frames (keeps contents cached).
  Status FlushAll();

  /// Flushes then evicts every unpinned frame: the cold-cache knob.
  /// Fails if any frame is still pinned.
  Status DropAll();

  BufferPoolStats stats() const;
  size_t capacity() const { return frames_.size(); }
  size_t cached_pages() const;
  size_t num_shards() const { return shards_.size(); }

 private:
  friend class PageHandle;

  struct Frame {
    PageId page_id = kInvalidPageId;
    int pin_count = 0;
    bool dirty = false;
    std::unique_ptr<char[]> data;
    std::list<size_t>::iterator lru_pos;  // valid iff in_lru
    bool in_lru = false;
  };

  /// One stripe: a slice of frames_ plus all bookkeeping for the pages
  /// that hash to it. Everything below `mu` is guarded by it.
  struct Shard {
    mutable std::mutex mu;
    std::vector<size_t> free_frames;      ///< global frame indices
    std::list<size_t> lru;                ///< front == most recently used
    std::unordered_map<PageId, size_t> page_table;
    BufferPoolStats stats;
  };

  Shard& ShardOf(PageId id) { return shards_[id % shards_.size()]; }
  const Shard& ShardOf(PageId id) const {
    return shards_[id % shards_.size()];
  }

  void Unpin(size_t frame);
  Status FlushFrame(Frame& frame, Shard& shard);
  /// Finds a frame for a new page in `shard`: free frame or LRU victim.
  /// Caller holds shard.mu.
  Result<size_t> GrabFrame(Shard& shard);
  Result<PageHandle> PinFreshLocked(PageId id, Shard& shard);

  Pager* pager_;
  std::vector<Frame> frames_;
  std::vector<Shard> shards_;
};

}  // namespace segdiff

#endif  // SEGDIFF_STORAGE_BUFFER_POOL_H_
