// Database: the top-level minidb handle.
//
// One file, one pager, one buffer pool, a catalog of tables. Single
// threaded, Status-based; the embedded stand-in for the MySQL instance
// the paper stores SegDiff/Exh features in.

#ifndef SEGDIFF_STORAGE_DB_H_
#define SEGDIFF_STORAGE_DB_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "storage/buffer_pool.h"
#include "storage/catalog.h"
#include "storage/pager.h"
#include "storage/table.h"

namespace segdiff {

struct DatabaseOptions {
  /// Buffer pool capacity in pages (default 32 MiB at 8 KiB pages).
  size_t buffer_pool_pages = 4096;
  bool create_if_missing = true;
  /// Simulated storage read latency (see Pager::SetSimulatedReadLatency);
  /// 0/0 disables. Used by the cache experiments to model the paper's
  /// rotating disk on RAM-backed filesystems.
  uint64_t sim_seq_read_ns = 0;
  uint64_t sim_random_read_ns = 0;
  /// File system the store does its IO through; nullptr = the default
  /// POSIX Vfs. Non-owning: must outlive the database. Tests inject a
  /// FaultInjectionVfs here to exercise crash recovery.
  Vfs* vfs = nullptr;
  /// Verify page checksums on read (bench_checksum measures the cost of
  /// flipping this; leave on outside benchmarks).
  bool verify_checksums = true;
};

struct CompactOptions {
  /// Convert eligible tables (all-double, at most ZoneMap::kMaxColumns
  /// columns) to compressed columnar segments while compacting. Tables
  /// with unsupported schemas stay on the row path regardless.
  bool columnar = true;
};

/// Aggregate size statistics (paper Section 6 metrics).
struct DatabaseSizeStats {
  uint64_t data_bytes = 0;   ///< heap pages: "feature size"
  uint64_t index_bytes = 0;  ///< B+-tree pages
  uint64_t file_bytes = 0;   ///< whole file; data+index+metadata
};

class Database {
 public:
  /// Opens (creating if allowed) the database at `path`, loading the
  /// catalog and attaching all tables and indexes.
  static Result<std::unique_ptr<Database>> Open(const std::string& path,
                                                const DatabaseOptions& options);

  ~Database();
  Database(const Database&) = delete;
  Database& operator=(const Database&) = delete;

  /// Creates a new empty table.
  Result<Table*> CreateTable(const std::string& name, TableSchema schema);

  /// Looks up a table by name.
  Result<Table*> GetTable(const std::string& name) const;

  const std::vector<std::unique_ptr<Table>>& tables() const {
    return tables_;
  }

  /// Stores a named opaque blob in the catalog (persisted at the next
  /// Checkpoint). Engines use this for state that must ride along with
  /// the tables — e.g. resumable ingest state.
  void PutMeta(const std::string& name, std::string blob);

  /// The named blob, or NotFound.
  Result<std::string> GetMeta(const std::string& name) const;

  /// Removes the named blob; returns whether it existed.
  bool EraseMeta(const std::string& name);

  /// Persists catalog + all dirty pages + file header.
  Status Checkpoint();

  /// Checkpoint, then evict the whole buffer pool: emulates the paper's
  /// "flush OS cache before every query" protocol.
  Status DropCaches();

  /// Rewrites every table and index into a fresh database file at
  /// `destination_path` (which must not exist), reclaiming the garbage
  /// pages left behind by DeleteWhere rewrites and abandoned extents.
  /// With options.columnar (the default), eligible tables are converted
  /// to compressed columnar segments on the way — the row→columnar
  /// lifecycle step. This database is not modified. Catalog blobs are
  /// copied from the in-memory map, which owning engines only refresh
  /// when they persist their state — callers holding a
  /// SegDiffIndex/ExhIndex must compact through the index's Compact()
  /// (or Checkpoint first) so the copied ingest blob is consistent with
  /// the copied tables.
  Status CompactInto(const std::string& destination_path,
                     const CompactOptions& options = CompactOptions());

  /// Disables the automatic Checkpoint in the destructor. Engines call
  /// this when their Open fails after the database handle was created:
  /// closing must not rewrite the catalog of a store that was never
  /// successfully opened (e.g. one whose ingest blob is corrupt).
  void set_checkpoint_on_close(bool checkpoint) {
    checkpoint_on_close_ = checkpoint;
  }

  BufferPool* buffer_pool() { return pool_.get(); }
  Pager* pager() { return pager_.get(); }

  /// Flushes dirty pages, then walks every page of the file verifying
  /// its checksum (segdiff_cli verify --scrub). Collects corrupt pages
  /// instead of failing on the first; read-only on the file contents
  /// apart from the flush.
  Result<ScrubReport> Scrub();

  DatabaseSizeStats SizeStats() const;

 private:
  Database() = default;

  std::unique_ptr<Pager> pager_;
  std::unique_ptr<BufferPool> pool_;
  std::vector<std::unique_ptr<Table>> tables_;
  std::map<std::string, std::string> meta_;  ///< named catalog blobs
  bool checkpoint_on_close_ = true;
};

}  // namespace segdiff

#endif  // SEGDIFF_STORAGE_DB_H_
