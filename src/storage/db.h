// Database: the top-level minidb handle.
//
// One file, one pager, one buffer pool, a write-ahead log, a catalog of
// tables. The embedded stand-in for the MySQL instance the paper stores
// SegDiff/Exh features in.
//
// Durability model (WAL mode, the default):
//   - every logical mutation (row insert / engine observation / meta
//     blob update) is logged before its pages are touched; the log is
//     fsynced in group-commit batches (see storage/wal.h);
//   - Checkpoint() is fuzzy: it syncs the log, writes the catalog and
//     all dirty pages, stamps the pager header with the applied LSN,
//     fsyncs the data file, then truncates the log to a fresh
//     generation. A crash at any point replays the log tail past the
//     header's applied LSN on the next Open — replay is idempotent and
//     byte-deterministic, so replaying twice yields identical files;
//   - a failed Open is side-effect-free: recovery replays into the
//     buffer pool only (nothing is written, synced, or truncated until
//     the first successful Checkpoint or page steal).
//
// Concurrency: one writer (the ingest path) plus any number of readers
// holding DatabaseSnapshots (storage/snapshot.h). Writers and snapshot
// creation must be externally serialized (the engines use their ingest
// mutex); snapshot readers then run with no further coordination.

#ifndef SEGDIFF_STORAGE_DB_H_
#define SEGDIFF_STORAGE_DB_H_

#include <atomic>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/result.h"
#include "storage/buffer_pool.h"
#include "storage/catalog.h"
#include "storage/pager.h"
#include "storage/snapshot.h"
#include "storage/table.h"
#include "storage/wal.h"

namespace segdiff {

struct DatabaseOptions {
  /// Buffer pool capacity in pages (default 32 MiB at 8 KiB pages).
  size_t buffer_pool_pages = 4096;
  bool create_if_missing = true;
  /// Simulated storage read latency (see Pager::SetSimulatedReadLatency);
  /// 0/0 disables. Used by the cache experiments to model the paper's
  /// rotating disk on RAM-backed filesystems.
  uint64_t sim_seq_read_ns = 0;
  uint64_t sim_random_read_ns = 0;
  /// File system the store does its IO through; nullptr = the default
  /// POSIX Vfs. Non-owning: must outlive the database. Tests inject a
  /// FaultInjectionVfs here to exercise crash recovery.
  Vfs* vfs = nullptr;
  /// Verify page checksums on read (bench_checksum measures the cost of
  /// flipping this; leave on outside benchmarks).
  bool verify_checksums = true;

  /// Write-ahead logging. Off, the store falls back to checkpoint-only
  /// durability (everything since the last Checkpoint is lost on a
  /// crash). Forced off for ":memory:" stores and read-only legacy v1
  /// files.
  bool wal = true;
  /// Group-commit window in milliseconds: 0 fsyncs inside every append,
  /// > 0 batches appends and makes them durable at most this much
  /// later. The default -1 reads SEGDIFF_WAL_GROUP_COMMIT_MS (itself
  /// defaulting to 1 ms).
  int64_t wal_group_commit_ms = -1;
  /// Engine stores set this: the WAL logs kObservation/kFlush records
  /// (the redo unit is the observation; the rows it deterministically
  /// fans out into are not logged) instead of per-row kRowAppend.
  bool wal_observation_log = false;
  /// Suggested log size that MaybeAutoCheckpoint() checkpoints at.
  uint64_t wal_auto_checkpoint_bytes = 16ull << 20;
  /// Replay the WAL tail at Open. Off, the log is neither replayed nor
  /// opened for writing — strictly for read-only inspection (the CLI's
  /// verify path); pair it with Abandon() so close writes nothing.
  bool replay_wal = true;
};

struct CompactOptions {
  /// Convert eligible tables (all-double, at most ZoneMap::kMaxColumns
  /// columns) to compressed columnar segments while compacting. Tables
  /// with unsupported schemas stay on the row path regardless.
  bool columnar = true;
};

/// Aggregate size statistics (paper Section 6 metrics).
struct DatabaseSizeStats {
  uint64_t data_bytes = 0;   ///< heap pages: "feature size"
  uint64_t index_bytes = 0;  ///< B+-tree pages
  uint64_t file_bytes = 0;   ///< whole file; data+index+metadata
};

/// Durability status surfaced by `segdiff_cli stats`.
struct WalInfo {
  bool enabled = false;
  uint64_t size_bytes = 0;      ///< log file + buffered bytes
  uint64_t last_lsn = 0;        ///< last assigned LSN
  uint64_t durable_lsn = 0;     ///< last fsynced LSN
  uint64_t applied_lsn = 0;     ///< pager header: checkpointed through
  uint64_t recovered_records = 0;  ///< records replayed at Open
  /// Bytes of torn log tail discarded at Open — expected after a crash
  /// mid-append (those records were never acknowledged), but non-zero
  /// on a clean-shutdown store means the log was damaged afterwards.
  uint64_t trimmed_tail_bytes = 0;
  int64_t group_commit_ms = 0;
  WalStats stats;
};

/// Degradation summary surfaced by `segdiff_cli stats` and the engines'
/// health checks.
struct StoreHealth {
  /// The store hit an unrecoverable write failure (disk full) and is
  /// serving reads only; every mutation returns the original error.
  bool degraded = false;
  std::string degraded_reason;  ///< first failure that flipped the flag
  uint64_t quarantined_pages = 0;  ///< checksum-failed pages on record
  uint64_t wal_trimmed_tail_bytes = 0;  ///< torn log tail cut at Open
  uint64_t pool_read_failures = 0;  ///< failed page reads (buffer pool)
};

/// What Repair() salvaged and what it had to leave behind.
struct RepairReport {
  uint64_t tables = 0;
  uint64_t rows_salvaged = 0;
  uint64_t pages_skipped = 0;     ///< corrupt heap pages routed around
  uint64_t segments_skipped = 0;  ///< corrupt columnar segments dropped
  uint64_t rows_lost = 0;         ///< rows on the skipped pages/segments
};

class Database {
 public:
  /// Opens (creating if allowed) the database at `path`, loading the
  /// catalog, attaching all tables and indexes, and replaying the WAL
  /// tail left by a crash. Replay is in-memory: a failed Open leaves
  /// both files byte-identical.
  static Result<std::unique_ptr<Database>> Open(const std::string& path,
                                                const DatabaseOptions& options);

  ~Database();
  Database(const Database&) = delete;
  Database& operator=(const Database&) = delete;

  /// Checkpoint + WAL shutdown. Idempotent; the destructor calls it
  /// (logging, not returning, errors) unless Abandon() was called.
  Status Close();

  /// Declares the handle dead: nothing is checkpointed or flushed at
  /// destruction and the store's files stay as they are — recovery can
  /// still salvage them. Engines call this when their Open fails after
  /// the Database was created (closing then would rewrite the catalog
  /// of a store that was never successfully opened); the CLI uses it
  /// for read-only inspection.
  void Abandon();

  /// Creates a new empty table. In WAL mode the creation is
  /// checkpointed immediately (redo records reference tables by name,
  /// so the table must be durable before rows are logged against it).
  Result<Table*> CreateTable(const std::string& name, TableSchema schema);

  /// Looks up a table by name.
  Result<Table*> GetTable(const std::string& name) const;

  const std::vector<std::unique_ptr<Table>>& tables() const {
    return tables_;
  }

  /// Stores a named opaque blob in the catalog (persisted at the next
  /// Checkpoint; in WAL mode also logged, so it survives a crash that
  /// precedes the checkpoint). Engines use this for state that must
  /// ride along with the tables — e.g. resumable ingest state. When
  /// the WAL append fails (sticky flush failure), the update is NOT
  /// applied and the error is returned — durability being broken
  /// surfaces here, not at the next Checkpoint.
  Status PutMeta(const std::string& name, std::string blob);

  /// The named blob, or NotFound.
  Result<std::string> GetMeta(const std::string& name) const;

  /// Removes the named blob; returns whether it existed, or the WAL
  /// append error (in which case nothing was erased).
  Result<bool> EraseMeta(const std::string& name);

  /// Persists catalog + all dirty pages + file header. In WAL mode this
  /// is the fuzzy checkpoint described in the file comment; the log is
  /// truncated only when the recovered observation backlog (see
  /// TakeRecoveredOps) has been drained, so un-replayed engine records
  /// are never discarded.
  Status Checkpoint();

  /// Checkpoint() iff the WAL has grown past
  /// options.wal_auto_checkpoint_bytes; called by the engines after
  /// segment flushes to bound recovery time.
  Status MaybeAutoCheckpoint();

  /// Checkpoint, then evict the whole buffer pool: emulates the paper's
  /// "flush OS cache before every query" protocol.
  Status DropCaches();

  /// Freezes a consistent point-in-time view of every table for readers
  /// that run concurrently with ingest. Must not race with writes (the
  /// engines call it under their ingest mutex, between operations).
  DatabaseSnapshot CreateSnapshot();

  /// Recovered kObservation/kFlush records awaiting replay through the
  /// owning engine's ingest pipeline (the records' redo semantics live
  /// there, not here). The engine drains them immediately after attach,
  /// under Wal::Suspend. Until drained (non-empty return not yet
  /// taken), Checkpoint keeps the log intact.
  std::vector<WalRecord> TakeRecoveredOps();
  bool HasRecoveredOps() const { return !recovered_ops_.empty(); }

  /// Rewrites every table and index into a fresh database file at
  /// `destination_path` (which must not exist), reclaiming the garbage
  /// pages left behind by DeleteWhere rewrites and abandoned extents.
  /// With options.columnar (the default), eligible tables are converted
  /// to compressed columnar segments on the way — the row→columnar
  /// lifecycle step. This database is not modified. Catalog blobs are
  /// copied from the in-memory map, which owning engines only refresh
  /// when they persist their state — callers holding a
  /// SegDiffIndex/ExhIndex must compact through the index's Compact()
  /// (or Checkpoint first) so the copied ingest blob is consistent with
  /// the copied tables.
  Status CompactInto(const std::string& destination_path,
                     const CompactOptions& options = CompactOptions());

  /// Best-effort rebuild into a fresh store at `destination_path` (which
  /// must not exist): every row still readable — skipping quarantined
  /// heap pages and corrupt columnar segments — is copied and indexes
  /// are rebuilt from the survivors; `report` (required) records what
  /// was salvaged and what was lost. WAL recovery happened at Open, so
  /// acknowledged rows the data file lost are already back before the
  /// copy starts. This database is not modified; after a successful
  /// repair the caller switches to the fresh store and discards this
  /// one.
  Status Repair(const std::string& destination_path, RepairReport* report);

  /// True once a storage failure flipped the store read-only.
  bool degraded() const { return degraded_.load(std::memory_order_acquire); }

  /// Reports a storage-write failure observed by a caller (engine flush,
  /// checkpoint, WAL append). A no-space failure flips the store into
  /// degraded read-only mode: queries keep running off the pages already
  /// on disk and in cache, while every later mutation fails fast with
  /// the recorded reason instead of tearing more state. Transient and
  /// permanent I/O errors do not flip the flag (retries handle the
  /// former; the latter fail loudly per-operation).
  void NoteStorageFailure(const Status& status);

  StoreHealth GetHealth() const;

  BufferPool* buffer_pool() { return pool_.get(); }
  Pager* pager() { return pager_.get(); }
  /// The write-ahead log, or nullptr (WAL off). Engines append their
  /// observation records through it.
  Wal* wal() { return wal_.get(); }

  WalInfo GetWalInfo() const;

  /// Flushes dirty pages, then walks every page of the file verifying
  /// its checksum (segdiff_cli verify --scrub). Collects corrupt pages
  /// instead of failing on the first; read-only on the file contents
  /// apart from the flush.
  Result<ScrubReport> Scrub();

  DatabaseSizeStats SizeStats() const;

 private:
  Database() = default;

  /// Applies the WAL tail to the in-memory state (pages, tables, meta
  /// blobs); kObservation/kFlush records are set aside for the engine.
  Status ReplayWal(std::vector<WalRecord> records);

  /// Checkpoint body (Checkpoint() wraps it with the degraded-mode gate
  /// and failure classification).
  Status CheckpointImpl();

  /// Shared rewrite behind CompactInto (salvage=false: any read error
  /// fails the copy) and Repair (salvage=true: corrupt pages/segments
  /// are skipped and accounted in `report`).
  Status CopyInto(const std::string& destination_path,
                  const CompactOptions& options, bool salvage,
                  RepairReport* report);

  /// The error every mutation returns while degraded.
  Status DegradedError() const;

  std::unique_ptr<Pager> pager_;
  std::unique_ptr<Wal> wal_;
  std::unique_ptr<BufferPool> pool_;
  std::vector<std::unique_ptr<Table>> tables_;
  std::map<std::string, std::string> meta_;  ///< named catalog blobs
  std::vector<WalRecord> recovered_ops_;  ///< engine records to drain
  uint64_t recovered_count_ = 0;          ///< records replayed at Open
  /// MaybeAutoCheckpoint threshold (DatabaseOptions value).
  uint64_t wal_auto_checkpoint_bytes_ = 16ull << 20;
  bool opened_ = false;     ///< Open() completed successfully
  bool closed_ = false;     ///< Close() already ran
  bool abandoned_ = false;  ///< Abandon() called
  /// Degraded read-only mode (see NoteStorageFailure). The flag is
  /// atomic so concurrent readers can consult it without the mutex,
  /// which only guards the reason string.
  std::atomic<bool> degraded_{false};
  mutable std::mutex health_mu_;
  std::string degraded_reason_;  ///< guarded by health_mu_
};

}  // namespace segdiff

#endif  // SEGDIFF_STORAGE_DB_H_
