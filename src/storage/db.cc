#include "storage/db.h"

#include <cstring>
#include <map>
#include <utility>

#include "common/env.h"
#include "common/logging.h"

namespace segdiff {
namespace {

bool IsLogicalRecord(WalRecordType type) {
  return type != WalRecordType::kUndoImage;
}

}  // namespace

Result<std::unique_ptr<Database>> Database::Open(
    const std::string& path, const DatabaseOptions& options) {
  std::unique_ptr<Database> db(new Database());
  SEGDIFF_ASSIGN_OR_RETURN(
      db->pager_, Pager::Open(path, options.create_if_missing, options.vfs));
  db->pager_->SetSimulatedReadLatency(options.sim_seq_read_ns,
                                      options.sim_random_read_ns);
  db->pager_->set_verify_checksums(options.verify_checksums);
  db->pool_ =
      std::make_unique<BufferPool>(db->pager_.get(), options.buffer_pool_pages);
  db->wal_auto_checkpoint_bytes_ = options.wal_auto_checkpoint_bytes;

  // Fresh file: materialize the catalog root page (page 1).
  const bool fresh = db->pager_->page_count() == 1;
  if (fresh) {
    SEGDIFF_ASSIGN_OR_RETURN(PageHandle root, db->pool_->AllocatePinned());
    if (root.page_id() != 1) {
      return Status::Internal("catalog root allocated at unexpected page");
    }
  }

  // WAL is forced off where it cannot work: anonymous stores vanish
  // with the process, and legacy v1 files cannot be written at all.
  // replay_wal=false (read-only inspection) skips the log entirely.
  const bool wal_enabled = options.wal && options.replay_wal &&
                           path != ":memory:" && !db->pager_->read_only();
  std::vector<WalRecord> recovered;
  if (wal_enabled) {
    WalOptions wal_options;
    wal_options.group_commit_ms =
        options.wal_group_commit_ms >= 0
            ? options.wal_group_commit_ms
            : GetEnvInt64("SEGDIFF_WAL_GROUP_COMMIT_MS", 1);
    SEGDIFF_ASSIGN_OR_RETURN(
        db->wal_, Wal::Open(db->pager_->vfs(), path, wal_options,
                            db->pager_->applied_lsn() + 1));
    db->wal_->set_logs_rows(!options.wal_observation_log);
    db->pool_->set_wal(db->wal_.get());
    recovered = db->wal_->TakeRecoveredRecords();
    if (fresh && !recovered.empty()) {
      // A fresh database cannot have a tail to replay — every logical
      // record postdates the first CreateTable checkpoint. This log
      // belongs to a deleted store that shared the path (the database
      // file was removed, its sidecar survived); replaying it would
      // resurrect foreign data, so discard it.
      recovered.clear();
      SEGDIFF_RETURN_IF_ERROR(db->wal_->Reset(1));
    }
    db->recovered_count_ = recovered.size();
  }

  bool has_logical = false;
  for (const WalRecord& record : recovered) {
    has_logical = has_logical || IsLogicalRecord(record.type);
  }
  if (!recovered.empty()) {
    // Undo rollback: every page written to the data file since the last
    // completed checkpoint (a steal or a checkpoint flush the crash
    // interrupted) carries an undo image of its prior bytes; applying
    // the OLDEST image per page restores the page's content as of that
    // checkpoint, so the logical replay below re-runs against an exact
    // checkpoint state — required when a crash preserves unsynced
    // writes (kill -9, power loss after the page cache drained).
    // Applied in the pool only (nothing is written until a checkpoint
    // or a steal), keeping a failed Open side-effect-free, and before
    // ReadCatalog so patched catalog pages are read patched. PinFresh
    // skips the disk read, so an image also heals a page torn by the
    // crash. Images of pages past the checkpoint's page count are
    // dropped: those pages postdate the checkpoint and replay
    // re-creates them from scratch.
    std::map<uint64_t, std::string> oldest;
    for (WalRecord& record : recovered) {
      if (record.type != WalRecordType::kUndoImage) continue;
      SEGDIFF_ASSIGN_OR_RETURN(WalUndoImage image,
                               DecodeWalUndoImage(record.payload));
      if (image.page_id < db->pager_->page_count() &&
          image.image.size() == kPageCapacity &&
          oldest.find(image.page_id) == oldest.end()) {
        oldest[image.page_id] = std::move(image.image);
      }
    }
    for (const auto& [page_id, image] : oldest) {
      SEGDIFF_ASSIGN_OR_RETURN(PageHandle page, db->pool_->PinFresh(page_id));
      std::memcpy(page.data(), image.data(), kPageCapacity);
      page.MarkDirty();
    }
  }

  SEGDIFF_ASSIGN_OR_RETURN(CatalogData catalog, ReadCatalog(db->pool_.get()));
  db->meta_ = std::move(catalog.blobs);
  for (TableMeta& meta : catalog.tables) {
    SEGDIFF_ASSIGN_OR_RETURN(
        std::unique_ptr<Table> table,
        Table::Attach(db->pool_.get(), meta.name, std::move(meta.schema),
                      meta.heap, std::move(meta.columnar)));
    for (IndexMeta& index : meta.indexes) {
      SEGDIFF_RETURN_IF_ERROR(table->AttachIndex(
          index.name, std::move(index.key_columns), index.meta_page));
    }
    // Zone maps are derived data persisted under a reserved blob key;
    // a blob that fails to parse or disagrees with the heap (e.g. a
    // crash persisted pages the map never saw) is simply dropped —
    // pruning stays off until Table::EnsureZoneMap rebuilds it.
    auto blob = db->meta_.find(kZoneMapBlobPrefix + table->name());
    if (blob != db->meta_.end()) {
      Result<ZoneMap> map = ZoneMap::Deserialize(blob->second);
      if (map.ok()) {
        table->AttachZoneMap(std::move(map).value());
      }
    }
    db->tables_.push_back(std::move(table));
  }
  // The reserved blobs never live in meta_; Checkpoint regenerates them
  // from the attached tables (and CompactInto must not copy stale ones).
  for (auto it = db->meta_.begin(); it != db->meta_.end();) {
    it = it->first.rfind(kZoneMapBlobPrefix, 0) == 0 ? db->meta_.erase(it)
                                                     : ++it;
  }

  if (has_logical) {
    SEGDIFF_RETURN_IF_ERROR(db->ReplayWal(std::move(recovered)));
  }
  db->opened_ = true;
  return db;
}

Status Database::ReplayWal(std::vector<WalRecord> records) {
  // Replay re-runs the original mutations through the normal code
  // paths, suspended so nothing is logged twice. Everything lands in
  // the buffer pool only; the file advances at the next checkpoint.
  Wal::Suspend suspend(wal_.get());
  for (WalRecord& record : records) {
    switch (record.type) {
      case WalRecordType::kPutMeta: {
        SEGDIFF_ASSIGN_OR_RETURN(WalMetaUpdate update,
                                 DecodeWalPutMeta(record.payload));
        meta_[std::move(update.name)] = std::move(update.blob);
        break;
      }
      case WalRecordType::kEraseMeta: {
        SEGDIFF_ASSIGN_OR_RETURN(std::string name,
                                 DecodeWalEraseMeta(record.payload));
        meta_.erase(name);
        break;
      }
      case WalRecordType::kRowAppend: {
        SEGDIFF_ASSIGN_OR_RETURN(WalRowAppend append,
                                 DecodeWalRowAppend(record.payload));
        Result<Table*> table = GetTable(append.table);
        if (!table.ok()) {
          return Status::Corruption(
              "WAL row-append references unknown table '" + append.table +
              "' (checkpoint missing after CreateTable?)");
        }
        if (append.row.size() != (*table)->schema().RowBytes()) {
          return Status::Corruption("WAL row size mismatch for table '" +
                                    append.table + "'");
        }
        const uint64_t have = (*table)->row_count();
        if (append.ordinal < have) {
          break;  // already present — idempotent replay skips it
        }
        if (append.ordinal > have) {
          return Status::Corruption(
              "WAL row-append gap for table '" + append.table + "': log has " +
              "ordinal " + std::to_string(append.ordinal) + ", table has " +
              std::to_string(have) + " rows");
        }
        SEGDIFF_RETURN_IF_ERROR(
            (*table)->InsertEncoded(append.row.data()).status());
        break;
      }
      case WalRecordType::kObservation:
      case WalRecordType::kFlush:
        // Engine records: their redo semantics live in the owning
        // SegDiff/Exh index, which drains them right after attach.
        recovered_ops_.push_back(std::move(record));
        break;
      case WalRecordType::kUndoImage:
        // Already applied: Open rolled every imaged page back to its
        // checkpoint-era content before the catalog was read.
        break;
    }
  }
  return Status::OK();
}

std::vector<WalRecord> Database::TakeRecoveredOps() {
  return std::move(recovered_ops_);
}

Database::~Database() {
  if (pool_ != nullptr && (!opened_ || abandoned_)) {
    // Never flush state of a handle that was not successfully opened or
    // was explicitly abandoned — it could overwrite a store recovery
    // can still salvage (e.g. checkpoint an empty catalog over it).
    pool_->set_abandoned();
  }
  if (!opened_ || closed_ || abandoned_) {
    return;  // wal_'s destructor still stops the flusher thread
  }
  Status status = Close();
  if (!status.ok()) {
    SEGDIFF_LOG(Error) << "close failed: " << status.ToString();
  }
}

Status Database::Close() {
  if (closed_ || abandoned_ || pager_ == nullptr || pool_ == nullptr) {
    return Status::OK();
  }
  closed_ = true;
  if (degraded()) {
    // Degraded close: nothing more can be made durable, and a failing
    // checkpoint could tear the file further. Leave the data file at
    // its last checkpoint plus the intact WAL — exactly the state crash
    // recovery replays — and report success: everything acknowledged is
    // already durable.
    pool_->set_abandoned();
    if (wal_ != nullptr) {
      wal_->Close();  // best-effort; the sticky flush error is expected
    }
    return Status::OK();
  }
  Status status = Status::OK();
  if (!pager_->read_only()) {
    status = Checkpoint();
  }
  if (wal_ != nullptr) {
    Status wal_status = wal_->Close();
    if (status.ok()) {
      status = wal_status;
    }
  }
  return status;
}

void Database::Abandon() {
  abandoned_ = true;
  if (pool_ != nullptr) {
    pool_->set_abandoned();
  }
}

Result<Table*> Database::CreateTable(const std::string& name,
                                     TableSchema schema) {
  if (degraded()) {
    return DegradedError();
  }
  for (const auto& table : tables_) {
    if (table->name() == name) {
      return Status::AlreadyExists("table exists: " + name);
    }
  }
  SEGDIFF_ASSIGN_OR_RETURN(
      std::unique_ptr<Table> table,
      Table::Create(pool_.get(), name, std::move(schema)));
  tables_.push_back(std::move(table));
  if (wal_ != nullptr) {
    // Redo records reference tables by name; make the (cheap, empty)
    // table durable before any row is logged against it.
    Status status = Checkpoint();
    if (!status.ok()) {
      tables_.pop_back();
      return status;
    }
  }
  return tables_.back().get();
}

Result<Table*> Database::GetTable(const std::string& name) const {
  for (const auto& table : tables_) {
    if (table->name() == name) {
      return table.get();
    }
  }
  return Status::NotFound("no such table: " + name);
}

Status Database::PutMeta(const std::string& name, std::string blob) {
  if (degraded()) {
    return DegradedError();
  }
  if (wal_ != nullptr) {
    // Log-before-apply: if the record cannot be logged (sticky flush
    // failure), refuse the update instead of applying state that could
    // be acknowledged but lost.
    Status status = wal_->AppendPutMeta(name, blob).status();
    if (!status.ok()) {
      NoteStorageFailure(status);
      return status;
    }
  }
  meta_[name] = std::move(blob);
  return Status::OK();
}

Result<std::string> Database::GetMeta(const std::string& name) const {
  auto it = meta_.find(name);
  if (it == meta_.end()) {
    return Status::NotFound("no such meta blob: " + name);
  }
  return it->second;
}

Result<bool> Database::EraseMeta(const std::string& name) {
  if (degraded()) {
    return DegradedError();
  }
  if (wal_ != nullptr) {
    Status status = wal_->AppendEraseMeta(name).status();
    if (!status.ok()) {
      NoteStorageFailure(status);
      return status;
    }
  }
  return meta_.erase(name) != 0;
}

Status Database::Checkpoint() {
  if (degraded()) {
    return DegradedError();
  }
  Status status = CheckpointImpl();
  if (!status.ok()) {
    NoteStorageFailure(status);
  }
  return status;
}

Status Database::CheckpointImpl() {
  // Fuzzy checkpoint: the WAL tail is forced durable first, so the
  // applied LSN recorded below can never run ahead of the log.
  if (wal_ != nullptr) {
    SEGDIFF_RETURN_IF_ERROR(wal_->Sync());
  }
  CatalogData catalog;
  catalog.tables.reserve(tables_.size());
  for (const auto& table : tables_) {
    TableMeta meta;
    meta.name = table->name();
    meta.schema = table->schema();
    meta.heap = table->heap_meta();
    if (table->columnar() != nullptr) {
      meta.columnar = table->columnar()->meta();
    }
    for (const TableIndex& index : table->indexes()) {
      IndexMeta index_meta;
      index_meta.name = index.name;
      index_meta.key_columns = index.key_columns;
      index_meta.meta_page = index.tree->meta_page();
      meta.indexes.push_back(std::move(index_meta));
    }
    catalog.tables.push_back(std::move(meta));
  }
  catalog.blobs = meta_;
  for (const auto& table : tables_) {
    if (table->zone_map() != nullptr) {
      catalog.blobs[kZoneMapBlobPrefix + table->name()] =
          table->zone_map()->Serialize();
    }
  }
  SEGDIFF_RETURN_IF_ERROR(WriteCatalog(pool_.get(), catalog));
  SEGDIFF_RETURN_IF_ERROR(pool_->FlushAll());
  // The applied LSN advances — and the log truncates — only when the
  // recovered engine backlog has been drained; otherwise the un-replayed
  // observations must stay in the log for the next engine open.
  const bool advance = wal_ != nullptr && recovered_ops_.empty();
  uint64_t applied = 0;
  if (advance) {
    // Captured AFTER the flush: FlushAll (and any steal inside
    // WriteCatalog) appends undo images, and the next generation must
    // start exactly one past the last assigned LSN or the first frame
    // written after the reset would look gapped to the scanner.
    applied = wal_->last_lsn();
    SEGDIFF_RETURN_IF_ERROR(wal_->EnsureDurable(applied));
    pager_->set_applied_lsn(applied);
  }
  SEGDIFF_RETURN_IF_ERROR(pager_->Sync());
  if (advance) {
    SEGDIFF_RETURN_IF_ERROR(wal_->Reset(applied + 1));
  }
  return Status::OK();
}

Status Database::MaybeAutoCheckpoint() {
  if (degraded()) {
    // Degraded stores keep serving; the engines call this opportunistically
    // and must not see the (already-reported) failure again here.
    return Status::OK();
  }
  if (wal_ == nullptr || wal_->SizeBytes() < wal_auto_checkpoint_bytes_) {
    return Status::OK();
  }
  return Checkpoint();
}

void Database::NoteStorageFailure(const Status& status) {
  if (status.ok() || !status.IsNoSpace()) {
    return;
  }
  std::lock_guard<std::mutex> lock(health_mu_);
  if (!degraded_.load(std::memory_order_relaxed)) {
    degraded_reason_ = status.ToString();
    degraded_.store(true, std::memory_order_release);
  }
}

Status Database::DegradedError() const {
  std::lock_guard<std::mutex> lock(health_mu_);
  return Status::NoSpace("store is degraded (read-only): " +
                         degraded_reason_);
}

StoreHealth Database::GetHealth() const {
  StoreHealth health;
  health.degraded = degraded();
  {
    std::lock_guard<std::mutex> lock(health_mu_);
    health.degraded_reason = degraded_reason_;
  }
  if (pager_ != nullptr) {
    health.quarantined_pages = pager_->quarantined_count();
  }
  if (wal_ != nullptr) {
    health.wal_trimmed_tail_bytes = wal_->trimmed_tail_bytes();
  }
  if (pool_ != nullptr) {
    health.pool_read_failures = pool_->stats().read_failures;
  }
  return health;
}

DatabaseSnapshot Database::CreateSnapshot() {
  DatabaseSnapshot snapshot;
  snapshot.pool_snap_ = pool_->CreateSnapshot();
  for (const auto& table : tables_) {
    TableSnapshotView view;
    view.heap_meta = table->heap_meta();
    if (table->zone_map() != nullptr) {
      view.zone_map = std::make_shared<ZoneMap>(*table->zone_map());
    }
    snapshot.tables_[table->name()] = std::move(view);
  }
  return snapshot;
}

Status Database::CompactInto(const std::string& destination_path,
                             const CompactOptions& compact_options) {
  return CopyInto(destination_path, compact_options, /*salvage=*/false,
                  nullptr);
}

Status Database::Repair(const std::string& destination_path,
                        RepairReport* report) {
  if (report == nullptr) {
    return Status::InvalidArgument("Repair requires a report");
  }
  *report = RepairReport{};
  return CopyInto(destination_path, CompactOptions(), /*salvage=*/true,
                  report);
}

Status Database::CopyInto(const std::string& destination_path,
                          const CompactOptions& compact_options, bool salvage,
                          RepairReport* report) {
  DatabaseOptions options;
  options.buffer_pool_pages = pool_->capacity();
  options.create_if_missing = true;
  // The fresh store inherits this database's Vfs (fault-injection tests
  // compact through the injected file system too) and is always written
  // in the current checksummed format — compacting is the upgrade path
  // for legacy v1 stores. It runs checkpoint-only: the bulk rewrite is
  // made durable by the single Checkpoint at the end, and logging every
  // copied row would only double the IO.
  options.vfs = pager_->vfs();
  options.verify_checksums = pager_->verify_checksums();
  options.wal = false;
  SEGDIFF_ASSIGN_OR_RETURN(std::unique_ptr<Database> fresh,
                           Database::Open(destination_path, options));
  if (!fresh->tables_.empty()) {
    return Status::InvalidArgument("compaction target is not empty: " +
                                   destination_path);
  }
  for (const auto& table : tables_) {
    SEGDIFF_ASSIGN_OR_RETURN(Table * copy,
                             fresh->CreateTable(table->name(),
                                                table->schema()));
    // Repair reads through the salvage scan (skips corrupt pages and
    // segments, accounting them); compaction reads strictly (any
    // corruption fails the copy — compacting must not silently drop).
    Table::SalvageStats salvage_stats;
    auto scan = [&](const HeapFile::ScanFn& fn) -> Status {
      return salvage ? table->ScanSalvage(fn, &salvage_stats)
                     : table->Scan(fn);
    };
    if (compact_options.columnar &&
        ZoneMap::SupportsSchema(table->schema())) {
      // Row→columnar conversion: buffer encoded records segment by
      // segment and re-encode each chunk compressed. The final partial
      // chunk is columnar too — the copy's heap starts empty, ready for
      // fresh row-format appends.
      const size_t row_bytes = table->schema().RowBytes();
      std::vector<char> chunk;
      chunk.reserve(ColumnStore::kMaxSegmentRows * row_bytes);
      size_t chunk_rows = 0;
      SEGDIFF_RETURN_IF_ERROR(scan(
          [&](const char* record, RecordId, bool* keep_going) -> Status {
            *keep_going = true;
            chunk.insert(chunk.end(), record, record + row_bytes);
            if (++chunk_rows == ColumnStore::kMaxSegmentRows) {
              SEGDIFF_RETURN_IF_ERROR(
                  copy->AppendColumnarSegment(chunk.data(), chunk_rows));
              chunk.clear();
              chunk_rows = 0;
            }
            return Status::OK();
          }));
      if (chunk_rows > 0) {
        SEGDIFF_RETURN_IF_ERROR(
            copy->AppendColumnarSegment(chunk.data(), chunk_rows));
      }
    } else {
      SEGDIFF_RETURN_IF_ERROR(scan(
          [&](const char* record, RecordId, bool* keep_going) -> Status {
            *keep_going = true;
            Row row = DecodeRow(table->schema(), record);
            return copy->Insert(row).status();
          }));
    }
    if (report != nullptr) {
      ++report->tables;
      report->rows_salvaged += copy->row_count();
      report->pages_skipped += salvage_stats.pages_skipped;
      report->segments_skipped += salvage_stats.segments_skipped;
      report->rows_lost += salvage_stats.rows_lost;
    }
    for (const TableIndex& index : table->indexes()) {
      std::vector<std::string> columns;
      for (size_t column : index.key_columns) {
        columns.push_back(table->schema().column(column).name);
      }
      SEGDIFF_RETURN_IF_ERROR(copy->CreateIndex(index.name, columns).status());
    }
  }
  fresh->meta_ = meta_;  // ingest state etc. survives compaction
  return fresh->Close();
}

WalInfo Database::GetWalInfo() const {
  WalInfo info;
  info.applied_lsn = pager_ != nullptr ? pager_->applied_lsn() : 0;
  info.recovered_records = recovered_count_;
  if (wal_ == nullptr) {
    return info;
  }
  info.enabled = true;
  info.size_bytes = wal_->SizeBytes();
  info.last_lsn = wal_->last_lsn();
  info.durable_lsn = wal_->durable_lsn();
  info.trimmed_tail_bytes = wal_->trimmed_tail_bytes();
  info.group_commit_ms = wal_->group_commit_ms();
  info.stats = wal_->stats();
  return info;
}

Result<ScrubReport> Database::Scrub() {
  // Flush so the on-disk image matches the logical state being scrubbed
  // (dirty cached pages would otherwise mask or fake on-disk damage).
  // Legacy stores cannot be written, but they have nothing dirty either.
  if (!pager_->read_only()) {
    SEGDIFF_RETURN_IF_ERROR(pool_->FlushAll());
  }
  return pager_->Scrub();
}

Status Database::DropCaches() {
  SEGDIFF_RETURN_IF_ERROR(Checkpoint());
  return pool_->DropAll();
}

DatabaseSizeStats Database::SizeStats() const {
  DatabaseSizeStats stats;
  for (const auto& table : tables_) {
    stats.data_bytes += table->DataSizeBytes();
    stats.index_bytes += table->IndexSizeBytes();
  }
  stats.file_bytes = pager_->FileSizeBytes();
  return stats;
}

}  // namespace segdiff
