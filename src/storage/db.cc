#include "storage/db.h"

#include <utility>

#include "common/logging.h"

namespace segdiff {

Result<std::unique_ptr<Database>> Database::Open(
    const std::string& path, const DatabaseOptions& options) {
  std::unique_ptr<Database> db(new Database());
  SEGDIFF_ASSIGN_OR_RETURN(
      db->pager_, Pager::Open(path, options.create_if_missing, options.vfs));
  db->pager_->SetSimulatedReadLatency(options.sim_seq_read_ns,
                                      options.sim_random_read_ns);
  db->pager_->set_verify_checksums(options.verify_checksums);
  if (db->pager_->read_only()) {
    // Legacy v1 store: readable, but pages cannot be written back, so a
    // close must not attempt to checkpoint. Compact() upgrades it.
    db->checkpoint_on_close_ = false;
  }
  db->pool_ =
      std::make_unique<BufferPool>(db->pager_.get(), options.buffer_pool_pages);

  // Fresh file: materialize the catalog root page (page 1).
  if (db->pager_->page_count() == 1) {
    SEGDIFF_ASSIGN_OR_RETURN(PageHandle root, db->pool_->AllocatePinned());
    if (root.page_id() != 1) {
      return Status::Internal("catalog root allocated at unexpected page");
    }
  }

  SEGDIFF_ASSIGN_OR_RETURN(CatalogData catalog, ReadCatalog(db->pool_.get()));
  db->meta_ = std::move(catalog.blobs);
  for (TableMeta& meta : catalog.tables) {
    SEGDIFF_ASSIGN_OR_RETURN(
        std::unique_ptr<Table> table,
        Table::Attach(db->pool_.get(), meta.name, std::move(meta.schema),
                      meta.heap, std::move(meta.columnar)));
    for (IndexMeta& index : meta.indexes) {
      SEGDIFF_RETURN_IF_ERROR(table->AttachIndex(
          index.name, std::move(index.key_columns), index.meta_page));
    }
    // Zone maps are derived data persisted under a reserved blob key;
    // a blob that fails to parse or disagrees with the heap (e.g. a
    // crash persisted pages the map never saw) is simply dropped —
    // pruning stays off until Table::EnsureZoneMap rebuilds it.
    auto blob = db->meta_.find(kZoneMapBlobPrefix + table->name());
    if (blob != db->meta_.end()) {
      Result<ZoneMap> map = ZoneMap::Deserialize(blob->second);
      if (map.ok()) {
        table->AttachZoneMap(std::move(map).value());
      }
    }
    db->tables_.push_back(std::move(table));
  }
  // The reserved blobs never live in meta_; Checkpoint regenerates them
  // from the attached tables (and CompactInto must not copy stale ones).
  for (auto it = db->meta_.begin(); it != db->meta_.end();) {
    it = it->first.rfind(kZoneMapBlobPrefix, 0) == 0 ? db->meta_.erase(it)
                                                     : ++it;
  }
  return db;
}

Database::~Database() {
  if (pager_ == nullptr || pool_ == nullptr) {
    return;  // partially constructed (Open failed mid-way)
  }
  if (!checkpoint_on_close_) {
    return;  // the owning engine's open failed; leave the file untouched
  }
  Status status = Checkpoint();
  if (!status.ok()) {
    SEGDIFF_LOG(Error) << "checkpoint on close failed: " << status.ToString();
  }
}

Result<Table*> Database::CreateTable(const std::string& name,
                                     TableSchema schema) {
  for (const auto& table : tables_) {
    if (table->name() == name) {
      return Status::AlreadyExists("table exists: " + name);
    }
  }
  SEGDIFF_ASSIGN_OR_RETURN(
      std::unique_ptr<Table> table,
      Table::Create(pool_.get(), name, std::move(schema)));
  tables_.push_back(std::move(table));
  return tables_.back().get();
}

Result<Table*> Database::GetTable(const std::string& name) const {
  for (const auto& table : tables_) {
    if (table->name() == name) {
      return table.get();
    }
  }
  return Status::NotFound("no such table: " + name);
}

void Database::PutMeta(const std::string& name, std::string blob) {
  meta_[name] = std::move(blob);
}

Result<std::string> Database::GetMeta(const std::string& name) const {
  auto it = meta_.find(name);
  if (it == meta_.end()) {
    return Status::NotFound("no such meta blob: " + name);
  }
  return it->second;
}

bool Database::EraseMeta(const std::string& name) {
  return meta_.erase(name) != 0;
}

Status Database::Checkpoint() {
  CatalogData catalog;
  catalog.tables.reserve(tables_.size());
  for (const auto& table : tables_) {
    TableMeta meta;
    meta.name = table->name();
    meta.schema = table->schema();
    meta.heap = table->heap_meta();
    if (table->columnar() != nullptr) {
      meta.columnar = table->columnar()->meta();
    }
    for (const TableIndex& index : table->indexes()) {
      IndexMeta index_meta;
      index_meta.name = index.name;
      index_meta.key_columns = index.key_columns;
      index_meta.meta_page = index.tree->meta_page();
      meta.indexes.push_back(std::move(index_meta));
    }
    catalog.tables.push_back(std::move(meta));
  }
  catalog.blobs = meta_;
  for (const auto& table : tables_) {
    if (table->zone_map() != nullptr) {
      catalog.blobs[kZoneMapBlobPrefix + table->name()] =
          table->zone_map()->Serialize();
    }
  }
  SEGDIFF_RETURN_IF_ERROR(WriteCatalog(pool_.get(), catalog));
  SEGDIFF_RETURN_IF_ERROR(pool_->FlushAll());
  return pager_->Sync();
}

Status Database::CompactInto(const std::string& destination_path,
                             const CompactOptions& compact_options) {
  DatabaseOptions options;
  options.buffer_pool_pages = pool_->capacity();
  options.create_if_missing = true;
  // The fresh store inherits this database's Vfs (fault-injection tests
  // compact through the injected file system too) and is always written
  // in the current checksummed format — compacting is the upgrade path
  // for legacy v1 stores.
  options.vfs = pager_->vfs();
  options.verify_checksums = pager_->verify_checksums();
  SEGDIFF_ASSIGN_OR_RETURN(std::unique_ptr<Database> fresh,
                           Database::Open(destination_path, options));
  if (!fresh->tables_.empty()) {
    return Status::InvalidArgument("compaction target is not empty: " +
                                   destination_path);
  }
  for (const auto& table : tables_) {
    SEGDIFF_ASSIGN_OR_RETURN(Table * copy,
                             fresh->CreateTable(table->name(),
                                                table->schema()));
    if (compact_options.columnar &&
        ZoneMap::SupportsSchema(table->schema())) {
      // Row→columnar conversion: buffer encoded records segment by
      // segment and re-encode each chunk compressed. The final partial
      // chunk is columnar too — the copy's heap starts empty, ready for
      // fresh row-format appends.
      const size_t row_bytes = table->schema().RowBytes();
      std::vector<char> chunk;
      chunk.reserve(ColumnStore::kMaxSegmentRows * row_bytes);
      size_t chunk_rows = 0;
      SEGDIFF_RETURN_IF_ERROR(table->Scan(
          [&](const char* record, RecordId, bool* keep_going) -> Status {
            *keep_going = true;
            chunk.insert(chunk.end(), record, record + row_bytes);
            if (++chunk_rows == ColumnStore::kMaxSegmentRows) {
              SEGDIFF_RETURN_IF_ERROR(
                  copy->AppendColumnarSegment(chunk.data(), chunk_rows));
              chunk.clear();
              chunk_rows = 0;
            }
            return Status::OK();
          }));
      if (chunk_rows > 0) {
        SEGDIFF_RETURN_IF_ERROR(
            copy->AppendColumnarSegment(chunk.data(), chunk_rows));
      }
    } else {
      SEGDIFF_RETURN_IF_ERROR(table->Scan(
          [&](const char* record, RecordId, bool* keep_going) -> Status {
            *keep_going = true;
            Row row = DecodeRow(table->schema(), record);
            return copy->Insert(row).status();
          }));
    }
    for (const TableIndex& index : table->indexes()) {
      std::vector<std::string> columns;
      for (size_t column : index.key_columns) {
        columns.push_back(table->schema().column(column).name);
      }
      SEGDIFF_RETURN_IF_ERROR(copy->CreateIndex(index.name, columns).status());
    }
  }
  fresh->meta_ = meta_;  // ingest state etc. survives compaction
  return fresh->Checkpoint();
}

Result<ScrubReport> Database::Scrub() {
  // Flush so the on-disk image matches the logical state being scrubbed
  // (dirty cached pages would otherwise mask or fake on-disk damage).
  // Legacy stores cannot be written, but they have nothing dirty either.
  if (!pager_->read_only()) {
    SEGDIFF_RETURN_IF_ERROR(pool_->FlushAll());
  }
  return pager_->Scrub();
}

Status Database::DropCaches() {
  SEGDIFF_RETURN_IF_ERROR(Checkpoint());
  return pool_->DropAll();
}

DatabaseSizeStats Database::SizeStats() const {
  DatabaseSizeStats stats;
  for (const auto& table : tables_) {
    stats.data_bytes += table->DataSizeBytes();
    stats.index_bytes += table->IndexSizeBytes();
  }
  stats.file_bytes = pager_->FileSizeBytes();
  return stats;
}

}  // namespace segdiff
