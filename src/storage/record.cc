#include "storage/record.h"

#include <unordered_set>

#include "common/coding.h"

namespace segdiff {

Result<TableSchema> TableSchema::Create(std::vector<Column> columns) {
  if (columns.empty()) {
    return Status::InvalidArgument("schema needs at least one column");
  }
  std::unordered_set<std::string> seen;
  for (const Column& column : columns) {
    if (column.name.empty()) {
      return Status::InvalidArgument("column name must not be empty");
    }
    if (!seen.insert(column.name).second) {
      return Status::InvalidArgument("duplicate column name: " + column.name);
    }
  }
  TableSchema schema;
  schema.columns_ = std::move(columns);
  return schema;
}

Result<size_t> TableSchema::ColumnIndex(const std::string& name) const {
  for (size_t i = 0; i < columns_.size(); ++i) {
    if (columns_[i].name == name) {
      return i;
    }
  }
  return Status::NotFound("no such column: " + name);
}

Result<TableSchema> DoubleSchema(const std::vector<std::string>& names) {
  std::vector<Column> columns;
  columns.reserve(names.size());
  for (const std::string& name : names) {
    columns.push_back(Column{name, ColumnType::kDouble});
  }
  return TableSchema::Create(std::move(columns));
}

Row DoubleRow(const std::vector<double>& values) {
  Row row;
  row.reserve(values.size());
  for (double value : values) {
    row.push_back(Value::Double(value));
  }
  return row;
}

Status EncodeRow(const TableSchema& schema, const Row& row, char* dst) {
  if (row.size() != schema.num_columns()) {
    return Status::InvalidArgument("row arity mismatch");
  }
  for (size_t i = 0; i < row.size(); ++i) {
    if (row[i].type != schema.column(i).type) {
      return Status::InvalidArgument("row type mismatch at column " +
                                     schema.column(i).name);
    }
    if (row[i].type == ColumnType::kDouble) {
      EncodeDouble(dst + 8 * i, row[i].d);
    } else {
      EncodeFixed64(dst + 8 * i, static_cast<uint64_t>(row[i].i));
    }
  }
  return Status::OK();
}

Row DecodeRow(const TableSchema& schema, const char* src) {
  Row row;
  row.reserve(schema.num_columns());
  for (size_t i = 0; i < schema.num_columns(); ++i) {
    if (schema.column(i).type == ColumnType::kDouble) {
      row.push_back(Value::Double(DecodeDouble(src + 8 * i)));
    } else {
      row.push_back(
          Value::Int64(static_cast<int64_t>(DecodeFixed64(src + 8 * i))));
    }
  }
  return row;
}

double DecodeDoubleColumn(const char* src, size_t i) {
  return DecodeDouble(src + 8 * i);
}

}  // namespace segdiff
