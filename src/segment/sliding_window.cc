#include "segment/sliding_window.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <utility>

namespace segdiff {

SlidingWindowSegmenter::SlidingWindowSegmenter(
    const SegmentationOptions& options, EmitFn emit)
    : options_(options), emit_(std::move(emit)) {}

Status SlidingWindowSegmenter::Emit(const DataSegment& segment) {
  ++segments_emitted_;
  return emit_(segment);
}

Status SlidingWindowSegmenter::Add(const Sample& sample) {
  if (finished_) {
    return Status::InvalidArgument("Add after Finish");
  }
  if (options_.max_error < 0.0) {
    return Status::InvalidArgument("max_error must be >= 0");
  }
  if (!std::isfinite(sample.t) || !std::isfinite(sample.v)) {
    return Status::InvalidArgument("non-finite sample");
  }
  ++observations_;

  if (!has_anchor_) {
    anchor_ = sample;
    has_anchor_ = true;
    return Status::OK();
  }
  if (sample.t <= (has_endpoint_ ? endpoint_.t : anchor_.t)) {
    return Status::InvalidArgument("time stamps must be strictly increasing");
  }
  if (!has_endpoint_) {
    endpoint_ = sample;
    has_endpoint_ = true;
    slope_lo_ = -std::numeric_limits<double>::infinity();
    slope_hi_ = std::numeric_limits<double>::infinity();
    return Status::OK();
  }

  // Would the line anchor -> sample keep every interior observation
  // (including the current endpoint) within max_error?
  const double dt_end = endpoint_.t - anchor_.t;
  const double candidate_lo = std::max(
      slope_lo_, (endpoint_.v - anchor_.v - options_.max_error) / dt_end);
  const double candidate_hi = std::min(
      slope_hi_, (endpoint_.v - anchor_.v + options_.max_error) / dt_end);
  const double slope = (sample.v - anchor_.v) / (sample.t - anchor_.t);

  if (slope >= candidate_lo && slope <= candidate_hi) {
    // Extend the window: the old endpoint becomes an interior point.
    slope_lo_ = candidate_lo;
    slope_hi_ = candidate_hi;
    endpoint_ = sample;
    return Status::OK();
  }

  // Emit the segment ending at the current endpoint; restart there.
  SEGDIFF_RETURN_IF_ERROR(Emit(DataSegment{anchor_, endpoint_}));
  anchor_ = endpoint_;
  endpoint_ = sample;
  slope_lo_ = -std::numeric_limits<double>::infinity();
  slope_hi_ = std::numeric_limits<double>::infinity();
  return Status::OK();
}

Status SlidingWindowSegmenter::Flush() {
  if (finished_) {
    return Status::InvalidArgument("Flush after Finish");
  }
  if (!has_anchor_ || !has_endpoint_) {
    return Status::OK();  // nothing pending
  }
  SEGDIFF_RETURN_IF_ERROR(Emit(DataSegment{anchor_, endpoint_}));
  // Restart anchored at the flushed endpoint: the next segment continues
  // from it, keeping the approximation contiguous across flushes.
  anchor_ = endpoint_;
  has_endpoint_ = false;
  slope_lo_ = -std::numeric_limits<double>::infinity();
  slope_hi_ = std::numeric_limits<double>::infinity();
  return Status::OK();
}

Status SlidingWindowSegmenter::Finish() {
  if (finished_) {
    return Status::InvalidArgument("Finish called twice");
  }
  SEGDIFF_RETURN_IF_ERROR(Flush());
  finished_ = true;
  return Status::OK();
}

SegmenterState SlidingWindowSegmenter::SaveState() const {
  SegmenterState state;
  state.has_anchor = has_anchor_;
  state.has_endpoint = has_endpoint_;
  state.finished = finished_;
  state.anchor = anchor_;
  state.endpoint = endpoint_;
  state.slope_lo = slope_lo_;
  state.slope_hi = slope_hi_;
  state.observations = observations_;
  state.segments_emitted = segments_emitted_;
  return state;
}

Status SlidingWindowSegmenter::RestoreState(const SegmenterState& state) {
  if (state.has_endpoint &&
      (!state.has_anchor || !(state.anchor.t < state.endpoint.t))) {
    return Status::InvalidArgument("inconsistent segmenter state");
  }
  has_anchor_ = state.has_anchor;
  has_endpoint_ = state.has_endpoint;
  finished_ = state.finished;
  anchor_ = state.anchor;
  endpoint_ = state.endpoint;
  slope_lo_ = state.slope_lo;
  slope_hi_ = state.slope_hi;
  observations_ = state.observations;
  segments_emitted_ = state.segments_emitted;
  return Status::OK();
}

Result<PiecewiseLinear> SegmentSeries(const Series& series,
                                      const SegmentationOptions& options) {
  if (series.size() < 2) {
    return Status::InvalidArgument(
        "need at least 2 observations to segment");
  }
  if (options.max_error < 0.0) {
    return Status::InvalidArgument("max_error must be >= 0");
  }
  std::vector<DataSegment> segments;
  SlidingWindowSegmenter segmenter(
      options, [&segments](const DataSegment& segment) {
        segments.push_back(segment);
        return Status::OK();
      });
  for (const Sample& sample : series) {
    SEGDIFF_RETURN_IF_ERROR(segmenter.Add(sample));
  }
  SEGDIFF_RETURN_IF_ERROR(segmenter.Finish());
  return PiecewiseLinear::FromSegments(std::move(segments));
}

Result<PiecewiseLinear> SegmentSeriesWithTolerance(const Series& series,
                                                   double eps) {
  if (eps < 0.0) {
    return Status::InvalidArgument("eps must be >= 0");
  }
  SegmentationOptions options;
  options.max_error = eps / 2.0;
  return SegmentSeries(series, options);
}

}  // namespace segdiff
