#include "segment/pla.h"

#include <algorithm>
#include <cmath>
#include <string>

namespace segdiff {

Result<PiecewiseLinear> PiecewiseLinear::FromSegments(
    std::vector<DataSegment> segments) {
  for (size_t i = 0; i < segments.size(); ++i) {
    if (!(segments[i].start.t < segments[i].end.t)) {
      return Status::InvalidArgument("degenerate segment at index " +
                                     std::to_string(i));
    }
    if (i > 0 && !AreContiguous(segments[i - 1], segments[i])) {
      return Status::InvalidArgument("segments not contiguous at index " +
                                     std::to_string(i));
    }
  }
  PiecewiseLinear pla;
  pla.segments_ = std::move(segments);
  return pla;
}

double PiecewiseLinear::t_min() const {
  return segments_.empty() ? 0.0 : segments_.front().start.t;
}

double PiecewiseLinear::t_max() const {
  return segments_.empty() ? 0.0 : segments_.back().end.t;
}

Result<double> PiecewiseLinear::Evaluate(double t) const {
  if (segments_.empty() || t < t_min() || t > t_max()) {
    return Status::OutOfRange("t outside approximation span");
  }
  // Binary search for the segment containing t.
  auto it = std::upper_bound(
      segments_.begin(), segments_.end(), t,
      [](double value, const DataSegment& seg) { return value < seg.end.t; });
  if (it == segments_.end()) {
    --it;
  }
  return it->ValueAt(t);
}

double PiecewiseLinear::CompressionRate(size_t n_observations) const {
  if (segments_.empty()) {
    return 0.0;
  }
  return static_cast<double>(n_observations) /
         static_cast<double>(segments_.size());
}

Result<double> PiecewiseLinear::MaxAbsErrorOver(const Series& series) const {
  double max_error = 0.0;
  for (const Sample& sample : series) {
    SEGDIFF_ASSIGN_OR_RETURN(double fitted, Evaluate(sample.t));
    max_error = std::max(max_error, std::abs(fitted - sample.v));
  }
  return max_error;
}

}  // namespace segdiff
