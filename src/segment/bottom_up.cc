#include "segment/bottom_up.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <queue>
#include <vector>

namespace segdiff {
namespace {

/// Max |error| of the line through samples [lo] and [hi] over the interior
/// samples (lo, hi).
double MergeCost(const Series& series, size_t lo, size_t hi) {
  const Sample& a = series[lo];
  const Sample& b = series[hi];
  const double slope = (b.v - a.v) / (b.t - a.t);
  double cost = 0.0;
  for (size_t i = lo + 1; i < hi; ++i) {
    const double fitted = a.v + slope * (series[i].t - a.t);
    cost = std::max(cost, std::abs(fitted - series[i].v));
  }
  return cost;
}

struct Candidate {
  double cost;
  size_t left;     ///< left node id
  uint64_t stamp;  ///< lazy-deletion version of the left node

  bool operator>(const Candidate& other) const { return cost > other.cost; }
};

}  // namespace

Result<PiecewiseLinear> BottomUpSegment(const Series& series,
                                        const SegmentationOptions& options) {
  if (series.size() < 2) {
    return Status::InvalidArgument(
        "need at least 2 observations to segment");
  }
  if (options.max_error < 0.0) {
    return Status::InvalidArgument("max_error must be >= 0");
  }
  const size_t n = series.size();
  // Doubly linked list of segment boundaries over sample indices.
  // Node i represents the segment [start_[i], start_[next_[i]]].
  std::vector<size_t> start(n - 1);
  std::vector<size_t> prev(n - 1);
  std::vector<size_t> next(n - 1);
  std::vector<uint64_t> stamp(n - 1, 0);
  std::vector<bool> alive(n - 1, true);
  constexpr size_t kNone = std::numeric_limits<size_t>::max();
  for (size_t i = 0; i + 1 < n; ++i) {
    start[i] = i;
    prev[i] = i == 0 ? kNone : i - 1;
    next[i] = i + 2 < n ? i + 1 : kNone;
  }

  // Segment end index: start of next node, or n-1 for the last node.
  auto end_index = [&](size_t node) {
    return next[node] == kNone ? n - 1 : start[next[node]];
  };

  std::priority_queue<Candidate, std::vector<Candidate>,
                      std::greater<Candidate>>
      heap;
  auto push_candidate = [&](size_t node) {
    if (node == kNone || next[node] == kNone) {
      return;
    }
    const double cost =
        MergeCost(series, start[node], end_index(next[node]));
    heap.push(Candidate{cost, node, stamp[node]});
  };
  for (size_t i = 0; i + 1 < n; ++i) {
    push_candidate(i);
  }

  while (!heap.empty()) {
    const Candidate top = heap.top();
    heap.pop();
    const size_t node = top.left;
    if (!alive[node] || stamp[node] != top.stamp || next[node] == kNone) {
      continue;  // stale entry
    }
    if (top.cost > options.max_error) {
      break;  // cheapest merge already violates the bound
    }
    // Merge node with next[node].
    const size_t right = next[node];
    alive[right] = false;
    next[node] = next[right];
    if (next[right] != kNone) {
      prev[next[right]] = node;
    }
    ++stamp[node];
    push_candidate(node);
    if (prev[node] != kNone) {
      ++stamp[prev[node]];
      push_candidate(prev[node]);
    }
  }

  std::vector<DataSegment> segments;
  size_t node = 0;
  while (node != kNone && !alive[node]) {
    ++node;  // node 0 is always alive, but stay defensive
  }
  for (; node != kNone; node = next[node]) {
    segments.push_back(
        DataSegment{series[start[node]], series[end_index(node)]});
  }
  return PiecewiseLinear::FromSegments(std::move(segments));
}

}  // namespace segdiff
