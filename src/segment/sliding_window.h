// Online sliding-window segmentation with linear interpolation
// (Keogh, Chu, Hart, Pazzani, "An online algorithm for segmenting time
// series", ICDM 2001, Section 2.1 — the variant the paper adopts).
//
// The window grows while the line through its two end observations stays
// within max_error (= eps/2) of every interior observation; when a new
// point would violate that, the current segment is emitted and a new
// window starts at its end observation. We implement it in O(n) total by
// maintaining the feasible slope interval of the anchored line: a point
// (t_i, v_i) interior to a window anchored at (t0, v0) admits slopes in
// [(v_i - v0 - d) / (t_i - t0), (v_i - v0 + d) / (t_i - t0)], and the
// window is valid iff the end-to-end slope lies in the intersection of
// interior intervals. This is algebraically identical to the textbook
// recheck-all-interior-points formulation (tests cross-validate).

#ifndef SEGDIFF_SEGMENT_SLIDING_WINDOW_H_
#define SEGDIFF_SEGMENT_SLIDING_WINDOW_H_

#include <functional>
#include <vector>

#include "common/result.h"
#include "segment/pla.h"
#include "segment/segment.h"
#include "ts/series.h"

namespace segdiff {

/// Options for sliding-window segmentation.
struct SegmentationOptions {
  /// Maximum absolute deviation of the approximation at any observation.
  /// The paper sets max_error = eps / 2 (Definition 2 / Section 4.1).
  double max_error = 0.1;
};

/// Streaming segmenter: feed observations in time order; completed
/// segments are emitted through the callback as soon as they are final.
/// Call Finish() to flush the trailing segment.
class SlidingWindowSegmenter {
 public:
  using EmitFn = std::function<Status(const DataSegment&)>;

  /// `emit` is invoked once per completed segment, in temporal order.
  SlidingWindowSegmenter(const SegmentationOptions& options, EmitFn emit);

  /// Feeds the next observation; time stamps must be strictly increasing.
  Status Add(const Sample& sample);

  /// Flushes the pending window as a final segment (if it has >= 2
  /// observations). The segmenter can keep accepting samples afterwards
  /// only via a new instance.
  Status Finish();

  /// Number of observations consumed so far.
  size_t observations() const { return observations_; }
  /// Number of segments emitted so far.
  size_t segments_emitted() const { return segments_emitted_; }

 private:
  Status Emit(const DataSegment& segment);

  SegmentationOptions options_;
  EmitFn emit_;
  bool has_anchor_ = false;
  bool has_endpoint_ = false;
  Sample anchor_;       ///< first observation of the open window
  Sample endpoint_;     ///< latest observation of the open window
  double slope_lo_ = 0.0;  ///< feasible slope interval (interior points)
  double slope_hi_ = 0.0;
  bool finished_ = false;
  size_t observations_ = 0;
  size_t segments_emitted_ = 0;
};

/// Convenience: segments a whole series. Fails with InvalidArgument for
/// series with fewer than 2 samples or non-positive max_error when
/// options.max_error < 0.
Result<PiecewiseLinear> SegmentSeries(const Series& series,
                                      const SegmentationOptions& options);

/// Convenience used throughout: eps is the paper's user tolerance, the
/// segmenter runs at max_error = eps / 2.
Result<PiecewiseLinear> SegmentSeriesWithTolerance(const Series& series,
                                                   double eps);

}  // namespace segdiff

#endif  // SEGDIFF_SEGMENT_SLIDING_WINDOW_H_
