// Online sliding-window segmentation with linear interpolation
// (Keogh, Chu, Hart, Pazzani, "An online algorithm for segmenting time
// series", ICDM 2001, Section 2.1 — the variant the paper adopts).
//
// The window grows while the line through its two end observations stays
// within max_error (= eps/2) of every interior observation; when a new
// point would violate that, the current segment is emitted and a new
// window starts at its end observation. We implement it in O(n) total by
// maintaining the feasible slope interval of the anchored line: a point
// (t_i, v_i) interior to a window anchored at (t0, v0) admits slopes in
// [(v_i - v0 - d) / (t_i - t0), (v_i - v0 + d) / (t_i - t0)], and the
// window is valid iff the end-to-end slope lies in the intersection of
// interior intervals. This is algebraically identical to the textbook
// recheck-all-interior-points formulation (tests cross-validate).

#ifndef SEGDIFF_SEGMENT_SLIDING_WINDOW_H_
#define SEGDIFF_SEGMENT_SLIDING_WINDOW_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "common/result.h"
#include "segment/pla.h"
#include "segment/segment.h"
#include "ts/series.h"

namespace segdiff {

/// Options for sliding-window segmentation.
struct SegmentationOptions {
  /// Maximum absolute deviation of the approximation at any observation.
  /// The paper sets max_error = eps / 2 (Definition 2 / Section 4.1).
  double max_error = 0.1;
};

/// A snapshot of the segmenter's open window, sufficient to resume the
/// exact observation-for-observation behaviour in a new instance (or a
/// new process: SegDiffIndex serializes this into its store).
struct SegmenterState {
  bool has_anchor = false;
  bool has_endpoint = false;
  bool finished = false;
  Sample anchor;
  Sample endpoint;
  double slope_lo = 0.0;
  double slope_hi = 0.0;
  uint64_t observations = 0;
  uint64_t segments_emitted = 0;
};

/// Streaming segmenter: feed observations in time order; completed
/// segments are emitted through the callback as soon as they are final.
/// Call Flush() to force the trailing segment out (appending continues,
/// anchored at the flushed endpoint) or Finish() to end the stream.
class SlidingWindowSegmenter {
 public:
  using EmitFn = std::function<Status(const DataSegment&)>;

  /// `emit` is invoked once per completed segment, in temporal order.
  SlidingWindowSegmenter(const SegmentationOptions& options, EmitFn emit);

  /// Feeds the next observation; time stamps must be strictly increasing.
  Status Add(const Sample& sample);

  /// Emits the open window as a segment (if it has >= 2 observations)
  /// and restarts the window anchored at its endpoint, so subsequent
  /// observations produce a contiguous approximation. Idempotent when
  /// nothing is pending.
  Status Flush();

  /// Flushes the pending window as a final segment (if it has >= 2
  /// observations) and ends the stream: no further Add calls. To keep
  /// appending after a flush use Flush() instead.
  Status Finish();

  /// Snapshot of the open window for later RestoreState.
  SegmenterState SaveState() const;

  /// Replaces the segmenter's entire state with `state` (as produced by
  /// SaveState, possibly in a previous process).
  Status RestoreState(const SegmenterState& state);

  /// Number of observations consumed so far.
  size_t observations() const { return static_cast<size_t>(observations_); }
  /// Number of segments emitted so far.
  size_t segments_emitted() const {
    return static_cast<size_t>(segments_emitted_);
  }

 private:
  Status Emit(const DataSegment& segment);

  SegmentationOptions options_;
  EmitFn emit_;
  bool has_anchor_ = false;
  bool has_endpoint_ = false;
  Sample anchor_;       ///< first observation of the open window
  Sample endpoint_;     ///< latest observation of the open window
  double slope_lo_ = 0.0;  ///< feasible slope interval (interior points)
  double slope_hi_ = 0.0;
  bool finished_ = false;
  uint64_t observations_ = 0;
  uint64_t segments_emitted_ = 0;
};

/// Convenience: segments a whole series. Fails with InvalidArgument for
/// series with fewer than 2 samples or non-positive max_error when
/// options.max_error < 0.
Result<PiecewiseLinear> SegmentSeries(const Series& series,
                                      const SegmentationOptions& options);

/// Convenience used throughout: eps is the paper's user tolerance, the
/// segmenter runs at max_error = eps / 2.
Result<PiecewiseLinear> SegmentSeriesWithTolerance(const Series& series,
                                                   double eps);

}  // namespace segdiff

#endif  // SEGDIFF_SEGMENT_SLIDING_WINDOW_H_
