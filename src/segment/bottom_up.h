// Offline bottom-up segmentation (Keogh et al. 2001, Section 2.2).
//
// Included as an ablation comparator for the paper's choice of the online
// sliding-window algorithm: bottom-up typically produces fewer segments
// (higher compression rate r) for the same error bound but is offline.
// Segments interpolate their end observations, matching the sliding-window
// output contract, so it can be swapped into the SegDiff pipeline.

#ifndef SEGDIFF_SEGMENT_BOTTOM_UP_H_
#define SEGDIFF_SEGMENT_BOTTOM_UP_H_

#include "common/result.h"
#include "segment/pla.h"
#include "segment/sliding_window.h"
#include "ts/series.h"

namespace segdiff {

/// Merges adjacent segments greedily (cheapest merge first) while the
/// merged segment keeps every interior observation within
/// options.max_error. Same guarantee as SegmentSeries.
Result<PiecewiseLinear> BottomUpSegment(const Series& series,
                                        const SegmentationOptions& options);

}  // namespace segdiff

#endif  // SEGDIFF_SEGMENT_BOTTOM_UP_H_
