// Data segments: the output unit of piecewise linear approximation.
//
// Terminology follows the paper (Section 4.2): a *data segment*
// ((t_s, v_s), (t_e, v_e)) approximates one continuous stretch of the
// series by the straight line through its two end observations.

#ifndef SEGDIFF_SEGMENT_SEGMENT_H_
#define SEGDIFF_SEGMENT_SEGMENT_H_

#include "ts/series.h"

namespace segdiff {

/// A straight-line approximation of one part of the data, pinned at two
/// real observations. Invariant: start.t < end.t (never degenerate).
struct DataSegment {
  Sample start;
  Sample end;

  /// Slope (v_e - v_s) / (t_e - t_s).
  double Slope() const { return (end.v - start.v) / (end.t - start.t); }

  /// Time covered by the segment.
  double Duration() const { return end.t - start.t; }

  /// Total change over the segment (end.v - start.v).
  double Rise() const { return end.v - start.v; }

  /// Value of the segment's line at `t` (no range check; callers clamp).
  double ValueAt(double t) const {
    return start.v + Slope() * (t - start.t);
  }

  friend bool operator==(const DataSegment& a, const DataSegment& b) {
    return a.start == b.start && a.end == b.end;
  }
};

/// True when `b` begins exactly where `a` ends (shared observation), the
/// contiguity invariant of segmentation output.
bool AreContiguous(const DataSegment& a, const DataSegment& b);

}  // namespace segdiff

#endif  // SEGDIFF_SEGMENT_SEGMENT_H_
