#include "segment/segment.h"

namespace segdiff {

bool AreContiguous(const DataSegment& a, const DataSegment& b) {
  return a.end == b.start;
}

}  // namespace segdiff
