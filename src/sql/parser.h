// Recursive-descent parser for the minidb SQL dialect (grammar in
// ast.h).

#ifndef SEGDIFF_SQL_PARSER_H_
#define SEGDIFF_SQL_PARSER_H_

#include <string>

#include "common/result.h"
#include "sql/ast.h"

namespace segdiff {
namespace sql {

/// Parses one statement (an optional trailing ';' is consumed). Fails
/// with InvalidArgument carrying the offending offset.
Result<Statement> Parse(const std::string& input);

}  // namespace sql
}  // namespace segdiff

#endif  // SEGDIFF_SQL_PARSER_H_
