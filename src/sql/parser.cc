#include "sql/parser.h"

#include <utility>

#include "sql/lexer.h"

namespace segdiff {
namespace sql {
namespace {

class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  Result<Statement> ParseStatement() {
    Statement stmt;
    if (AcceptKeyword("EXPLAIN")) {
      stmt.explain = true;
      if (!AcceptKeyword("SELECT")) {
        return Error("EXPLAIN supports only SELECT");
      }
      stmt.kind = StatementKind::kSelect;
      SEGDIFF_ASSIGN_OR_RETURN(stmt.select, ParseSelect());
      AcceptSymbol(";");
      if (Current().type != TokenType::kEnd) {
        return Error("trailing input after statement");
      }
      return stmt;
    }
    if (AcceptKeyword("CREATE")) {
      if (AcceptKeyword("TABLE")) {
        stmt.kind = StatementKind::kCreateTable;
        SEGDIFF_ASSIGN_OR_RETURN(stmt.create_table, ParseCreateTable());
      } else if (AcceptKeyword("INDEX")) {
        stmt.kind = StatementKind::kCreateIndex;
        SEGDIFF_ASSIGN_OR_RETURN(stmt.create_index, ParseCreateIndex());
      } else {
        return Error("expected TABLE or INDEX after CREATE");
      }
    } else if (AcceptKeyword("INSERT")) {
      stmt.kind = StatementKind::kInsert;
      SEGDIFF_ASSIGN_OR_RETURN(stmt.insert, ParseInsert());
    } else if (AcceptKeyword("SELECT")) {
      stmt.kind = StatementKind::kSelect;
      SEGDIFF_ASSIGN_OR_RETURN(stmt.select, ParseSelect());
    } else if (AcceptKeyword("DELETE")) {
      stmt.kind = StatementKind::kDelete;
      SEGDIFF_ASSIGN_OR_RETURN(stmt.del, ParseDelete());
    } else if (AcceptKeyword("SHOW")) {
      SEGDIFF_RETURN_IF_ERROR(ExpectKeyword("TABLES"));
      stmt.kind = StatementKind::kShowTables;
    } else if (AcceptKeyword("DESCRIBE")) {
      stmt.kind = StatementKind::kDescribe;
      SEGDIFF_ASSIGN_OR_RETURN(stmt.describe.table, ExpectIdentifier());
    } else {
      return Error("expected a statement");
    }
    AcceptSymbol(";");
    if (Current().type != TokenType::kEnd) {
      return Error("trailing input after statement");
    }
    return stmt;
  }

 private:
  const Token& Current() const { return tokens_[pos_]; }

  Status Error(const std::string& message) const {
    return Status::InvalidArgument(message + " at offset " +
                                   std::to_string(Current().offset));
  }

  bool AcceptKeyword(const std::string& keyword) {
    if (Current().type == TokenType::kKeyword && Current().text == keyword) {
      ++pos_;
      return true;
    }
    return false;
  }
  Status ExpectKeyword(const std::string& keyword) {
    if (!AcceptKeyword(keyword)) {
      return Error("expected " + keyword);
    }
    return Status::OK();
  }
  bool AcceptSymbol(const std::string& symbol) {
    if (Current().type == TokenType::kSymbol && Current().text == symbol) {
      ++pos_;
      return true;
    }
    return false;
  }
  Status ExpectSymbol(const std::string& symbol) {
    if (!AcceptSymbol(symbol)) {
      return Error("expected '" + symbol + "'");
    }
    return Status::OK();
  }
  Result<std::string> ExpectIdentifier() {
    if (Current().type != TokenType::kIdentifier) {
      return Error("expected identifier");
    }
    return tokens_[pos_++].text;
  }
  Result<double> ExpectNumber() {
    if (Current().type != TokenType::kNumber) {
      return Error("expected number");
    }
    return tokens_[pos_++].number;
  }

  Result<CreateTableStmt> ParseCreateTable() {
    CreateTableStmt stmt;
    SEGDIFF_ASSIGN_OR_RETURN(stmt.table, ExpectIdentifier());
    SEGDIFF_RETURN_IF_ERROR(ExpectSymbol("("));
    do {
      ColumnDef column;
      SEGDIFF_ASSIGN_OR_RETURN(column.name, ExpectIdentifier());
      if (AcceptKeyword("DOUBLE")) {
        column.type = ColumnType::kDouble;
      } else if (AcceptKeyword("BIGINT")) {
        column.type = ColumnType::kInt64;
      } else {
        return Error("expected column type DOUBLE or BIGINT");
      }
      stmt.columns.push_back(std::move(column));
    } while (AcceptSymbol(","));
    SEGDIFF_RETURN_IF_ERROR(ExpectSymbol(")"));
    return stmt;
  }

  Result<CreateIndexStmt> ParseCreateIndex() {
    CreateIndexStmt stmt;
    SEGDIFF_ASSIGN_OR_RETURN(stmt.index, ExpectIdentifier());
    SEGDIFF_RETURN_IF_ERROR(ExpectKeyword("ON"));
    SEGDIFF_ASSIGN_OR_RETURN(stmt.table, ExpectIdentifier());
    SEGDIFF_RETURN_IF_ERROR(ExpectSymbol("("));
    do {
      SEGDIFF_ASSIGN_OR_RETURN(std::string column, ExpectIdentifier());
      stmt.columns.push_back(std::move(column));
    } while (AcceptSymbol(","));
    SEGDIFF_RETURN_IF_ERROR(ExpectSymbol(")"));
    return stmt;
  }

  Result<InsertStmt> ParseInsert() {
    InsertStmt stmt;
    SEGDIFF_RETURN_IF_ERROR(ExpectKeyword("INTO"));
    SEGDIFF_ASSIGN_OR_RETURN(stmt.table, ExpectIdentifier());
    SEGDIFF_RETURN_IF_ERROR(ExpectKeyword("VALUES"));
    do {
      SEGDIFF_RETURN_IF_ERROR(ExpectSymbol("("));
      std::vector<double> row;
      do {
        SEGDIFF_ASSIGN_OR_RETURN(double value, ExpectNumber());
        row.push_back(value);
      } while (AcceptSymbol(","));
      SEGDIFF_RETURN_IF_ERROR(ExpectSymbol(")"));
      stmt.rows.push_back(std::move(row));
    } while (AcceptSymbol(","));
    return stmt;
  }

  Result<CmpOp> ParseCmpOp() {
    if (Current().type != TokenType::kSymbol) {
      return Error("expected comparison operator");
    }
    const std::string op = tokens_[pos_++].text;
    if (op == "=") return CmpOp::kEq;
    if (op == "<") return CmpOp::kLt;
    if (op == "<=") return CmpOp::kLe;
    if (op == ">") return CmpOp::kGt;
    if (op == ">=") return CmpOp::kGe;
    --pos_;
    return Error("unsupported operator '" + op + "'");
  }

  Result<DeleteStmt> ParseDelete() {
    DeleteStmt stmt;
    SEGDIFF_RETURN_IF_ERROR(ExpectKeyword("FROM"));
    SEGDIFF_ASSIGN_OR_RETURN(stmt.table, ExpectIdentifier());
    if (AcceptKeyword("WHERE")) {
      do {
        WhereClause clause;
        SEGDIFF_ASSIGN_OR_RETURN(clause.column, ExpectIdentifier());
        SEGDIFF_ASSIGN_OR_RETURN(clause.op, ParseCmpOp());
        SEGDIFF_ASSIGN_OR_RETURN(clause.value, ExpectNumber());
        stmt.where.push_back(std::move(clause));
      } while (AcceptKeyword("AND"));
    }
    return stmt;
  }

  Result<SelectStmt> ParseSelect() {
    SelectStmt stmt;
    if (AcceptSymbol("*")) {
      stmt.star = true;
    } else if (AcceptKeyword("COUNT")) {
      SEGDIFF_RETURN_IF_ERROR(ExpectSymbol("("));
      SEGDIFF_RETURN_IF_ERROR(ExpectSymbol("*"));
      SEGDIFF_RETURN_IF_ERROR(ExpectSymbol(")"));
      stmt.count = true;
      stmt.aggregate = Aggregate::kCount;
    } else if (Current().type == TokenType::kKeyword &&
               (Current().text == "MIN" || Current().text == "MAX" ||
                Current().text == "AVG" || Current().text == "SUM")) {
      const std::string fn = tokens_[pos_++].text;
      stmt.aggregate = fn == "MIN"   ? Aggregate::kMin
                       : fn == "MAX" ? Aggregate::kMax
                       : fn == "AVG" ? Aggregate::kAvg
                                     : Aggregate::kSum;
      SEGDIFF_RETURN_IF_ERROR(ExpectSymbol("("));
      SEGDIFF_ASSIGN_OR_RETURN(stmt.aggregate_column, ExpectIdentifier());
      SEGDIFF_RETURN_IF_ERROR(ExpectSymbol(")"));
    } else {
      do {
        SEGDIFF_ASSIGN_OR_RETURN(std::string column, ExpectIdentifier());
        stmt.columns.push_back(std::move(column));
      } while (AcceptSymbol(","));
    }
    SEGDIFF_RETURN_IF_ERROR(ExpectKeyword("FROM"));
    SEGDIFF_ASSIGN_OR_RETURN(stmt.table, ExpectIdentifier());
    if (AcceptKeyword("WHERE")) {
      do {
        WhereClause clause;
        SEGDIFF_ASSIGN_OR_RETURN(clause.column, ExpectIdentifier());
        SEGDIFF_ASSIGN_OR_RETURN(clause.op, ParseCmpOp());
        SEGDIFF_ASSIGN_OR_RETURN(clause.value, ExpectNumber());
        stmt.where.push_back(std::move(clause));
      } while (AcceptKeyword("AND"));
    }
    if (AcceptKeyword("ORDER")) {
      SEGDIFF_RETURN_IF_ERROR(ExpectKeyword("BY"));
      OrderBy order;
      SEGDIFF_ASSIGN_OR_RETURN(order.column, ExpectIdentifier());
      if (AcceptKeyword("DESC")) {
        order.ascending = false;
      } else {
        AcceptKeyword("ASC");
      }
      stmt.order_by = order;
    }
    if (AcceptKeyword("LIMIT")) {
      SEGDIFF_ASSIGN_OR_RETURN(double limit, ExpectNumber());
      if (limit < 0) {
        return Error("LIMIT must be non-negative");
      }
      stmt.limit = static_cast<uint64_t>(limit);
    }
    return stmt;
  }

  std::vector<Token> tokens_;
  size_t pos_ = 0;
};

}  // namespace

Result<Statement> Parse(const std::string& input) {
  SEGDIFF_ASSIGN_OR_RETURN(std::vector<Token> tokens, Tokenize(input));
  Parser parser(std::move(tokens));
  return parser.ParseStatement();
}

}  // namespace sql
}  // namespace segdiff
