// SQL lexer for the minidb dialect (see parser.h for the grammar).

#ifndef SEGDIFF_SQL_LEXER_H_
#define SEGDIFF_SQL_LEXER_H_

#include <string>
#include <vector>

#include "common/result.h"

namespace segdiff {
namespace sql {

enum class TokenType : unsigned char {
  kKeyword,     // SELECT, FROM, ... (uppercased)
  kIdentifier,  // table/column names
  kNumber,      // double literal
  kString,      // 'single quoted'
  kSymbol,      // ( ) , * ; = < > <= >= != <>
  kEnd,
};

struct Token {
  TokenType type = TokenType::kEnd;
  std::string text;    // keyword (uppercased), identifier, symbol, string
  double number = 0.0; // for kNumber
  size_t offset = 0;   // byte offset in the input, for error messages
};

/// Splits `input` into tokens. Fails with InvalidArgument on unknown
/// characters or unterminated strings.
Result<std::vector<Token>> Tokenize(const std::string& input);

}  // namespace sql
}  // namespace segdiff

#endif  // SEGDIFF_SQL_LEXER_H_
