// SQL execution engine over a minidb Database.
//
// This is the layer the paper means by "transforming the search into
// standard database queries": SegDiff's point and line queries are
// expressible as the SELECT ... WHERE conjunction dialect this engine
// runs, with a rule-based choice between sequential scan and B+-tree
// index scan.

#ifndef SEGDIFF_SQL_ENGINE_H_
#define SEGDIFF_SQL_ENGINE_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "query/executor.h"
#include "sql/ast.h"
#include "storage/db.h"

namespace segdiff {
namespace sql {

/// Result of one statement.
struct QueryResult {
  std::vector<std::string> columns;
  std::vector<Row> rows;
  /// When non-empty (SHOW TABLES / DESCRIBE), one label per row printed
  /// as the leading column.
  std::vector<std::string> row_labels;
  uint64_t rows_affected = 0;     ///< INSERT count
  std::string access_path;        ///< "seq_scan" or "index_scan(<name>)"
  ScanStats scan_stats;
};

/// Stateless executor bound to one open database.
class Engine {
 public:
  /// `db` must outlive the engine.
  explicit Engine(Database* db) : db_(db) {}

  /// Parses and executes one statement.
  Result<QueryResult> Execute(const std::string& statement);

  /// Executes an already-parsed statement.
  Result<QueryResult> Execute(const Statement& statement);

 private:
  Result<QueryResult> ExecuteCreateTable(const CreateTableStmt& stmt);
  Result<QueryResult> ExecuteCreateIndex(const CreateIndexStmt& stmt);
  Result<QueryResult> ExecuteInsert(const InsertStmt& stmt);
  Result<QueryResult> ExecuteSelect(const SelectStmt& stmt,
                                    bool explain_only);
  Result<QueryResult> ExecuteDelete(const DeleteStmt& stmt);
  Result<QueryResult> ExecuteShowTables();
  Result<QueryResult> ExecuteDescribe(const DescribeStmt& stmt);

  Database* db_;
};

/// Renders a result as an aligned text table (for the CLI / examples).
std::string FormatResult(const QueryResult& result);

}  // namespace sql
}  // namespace segdiff

#endif  // SEGDIFF_SQL_ENGINE_H_
