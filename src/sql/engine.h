// SQL execution engine over a minidb Database.
//
// This is the layer the paper means by "transforming the search into
// standard database queries": SegDiff's point and line queries are
// expressible as the SELECT ... WHERE conjunction dialect this engine
// runs, with a rule-based choice between sequential scan and B+-tree
// index scan.

#ifndef SEGDIFF_SQL_ENGINE_H_
#define SEGDIFF_SQL_ENGINE_H_

#include <string>
#include <vector>

#include "common/governance.h"
#include "common/result.h"
#include "query/executor.h"
#include "sql/ast.h"
#include "storage/db.h"

namespace segdiff {
namespace sql {

/// Result of one statement.
struct QueryResult {
  std::vector<std::string> columns;
  std::vector<Row> rows;
  /// When non-empty (SHOW TABLES / DESCRIBE), one label per row printed
  /// as the leading column.
  std::vector<std::string> row_labels;
  uint64_t rows_affected = 0;     ///< INSERT count
  std::string access_path;        ///< "seq_scan" or "index_scan(<name>)"
  ScanStats scan_stats;
  /// True when quarantined (corrupt) pages were skipped during the scan:
  /// the rows above are complete over every readable page but may be
  /// missing rows from the quarantined ones.
  bool partial = false;
};

/// Stateless executor bound to one open database.
class Engine {
 public:
  /// `db` must outlive the engine.
  explicit Engine(Database* db) : db_(db) {}

  /// Parses and executes one statement. Recognizes the session command
  /// `SET statement_timeout_ms = <n>` (0 disables the timeout) before
  /// handing anything else to the SQL parser.
  Result<QueryResult> Execute(const std::string& statement);

  /// Executes an already-parsed statement.
  Result<QueryResult> Execute(const Statement& statement);

  /// Deadline applied to every subsequent SELECT scan; 0 = none.
  /// A statement that runs past it fails with DeadlineExceeded.
  void set_statement_timeout_ms(uint64_t ms) { statement_timeout_ms_ = ms; }
  uint64_t statement_timeout_ms() const { return statement_timeout_ms_; }

  /// Injects an external cancel token / deadline combined (via
  /// Deadline::Earlier) with the per-statement timeout. Lets embedders
  /// and tests cancel a running statement deterministically.
  void set_query_context(QueryContext ctx) { injected_ctx_ = ctx; }

 private:
  /// The governance context for one statement: the injected context's
  /// deadline tightened by statement_timeout_ms_.
  QueryContext StatementContext() const;

  Result<QueryResult> ExecuteCreateTable(const CreateTableStmt& stmt);
  Result<QueryResult> ExecuteCreateIndex(const CreateIndexStmt& stmt);
  Result<QueryResult> ExecuteInsert(const InsertStmt& stmt);
  Result<QueryResult> ExecuteSelect(const SelectStmt& stmt,
                                    bool explain_only);
  Result<QueryResult> ExecuteDelete(const DeleteStmt& stmt);
  Result<QueryResult> ExecuteShowTables();
  Result<QueryResult> ExecuteDescribe(const DescribeStmt& stmt);

  Database* db_;
  uint64_t statement_timeout_ms_ = 0;
  QueryContext injected_ctx_;
};

/// Renders a result as an aligned text table (for the CLI / examples).
std::string FormatResult(const QueryResult& result);

}  // namespace sql
}  // namespace segdiff

#endif  // SEGDIFF_SQL_ENGINE_H_
