#include "sql/engine.h"

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <cstring>
#include <limits>
#include <utility>

#include "query/scan_kernel.h"
#include "sql/parser.h"

namespace segdiff {
namespace sql {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

/// Bounds collected for one column from the WHERE conjunction.
struct ColumnBounds {
  double lower = -kInf;
  bool lower_inclusive = true;
  double upper = kInf;
  bool upper_inclusive = true;
  bool any = false;
};

ColumnBounds BoundsFor(const std::vector<WhereClause>& where, size_t column,
                       const TableSchema& schema) {
  ColumnBounds bounds;
  for (const WhereClause& clause : where) {
    auto idx = schema.ColumnIndex(clause.column);
    if (!idx.ok() || *idx != column) {
      continue;
    }
    bounds.any = true;
    // Interval intersection. On a strict tightening the new clause's
    // inclusivity wins; on a tie the stricter (exclusive) side wins.
    auto tighten_upper = [&bounds](double value, bool inclusive) {
      if (value < bounds.upper) {
        bounds.upper = value;
        bounds.upper_inclusive = inclusive;
      } else if (value == bounds.upper && !inclusive) {
        bounds.upper_inclusive = false;
      }
    };
    auto tighten_lower = [&bounds](double value, bool inclusive) {
      if (value > bounds.lower) {
        bounds.lower = value;
        bounds.lower_inclusive = inclusive;
      } else if (value == bounds.lower && !inclusive) {
        bounds.lower_inclusive = false;
      }
    };
    switch (clause.op) {
      case CmpOp::kEq:
        tighten_lower(clause.value, true);
        tighten_upper(clause.value, true);
        break;
      case CmpOp::kLt:
        tighten_upper(clause.value, false);
        break;
      case CmpOp::kLe:
        tighten_upper(clause.value, true);
        break;
      case CmpOp::kGt:
        tighten_lower(clause.value, false);
        break;
      case CmpOp::kGe:
        tighten_lower(clause.value, true);
        break;
    }
  }
  return bounds;
}

std::string ValueToString(const Value& value) {
  if (value.type == ColumnType::kInt64) {
    return std::to_string(value.i);
  }
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%g", value.d);
  return buf;
}

/// Matches `SET statement_timeout_ms = <n>` (case-insensitive keywords,
/// optional trailing semicolon). Returns true and fills `*out` on match.
/// The session command never reaches the SQL parser — it is engine
/// state, not a statement over tables.
bool ParseSetStatementTimeout(const std::string& text, uint64_t* out) {
  size_t pos = 0;
  auto skip_space = [&] {
    while (pos < text.size() &&
           std::isspace(static_cast<unsigned char>(text[pos]))) {
      ++pos;
    }
  };
  auto eat_word = [&](const char* word) {
    const size_t len = std::strlen(word);
    if (text.size() - pos < len) return false;
    for (size_t i = 0; i < len; ++i) {
      if (std::tolower(static_cast<unsigned char>(text[pos + i])) !=
          word[i]) {
        return false;
      }
    }
    pos += len;
    return true;
  };
  skip_space();
  if (!eat_word("set")) return false;
  skip_space();
  if (!eat_word("statement_timeout_ms")) return false;
  skip_space();
  if (pos >= text.size() || text[pos] != '=') return false;
  ++pos;
  skip_space();
  uint64_t value = 0;
  bool any_digit = false;
  while (pos < text.size() &&
         std::isdigit(static_cast<unsigned char>(text[pos]))) {
    value = value * 10 + static_cast<uint64_t>(text[pos] - '0');
    any_digit = true;
    ++pos;
  }
  if (!any_digit) return false;
  skip_space();
  if (pos < text.size() && text[pos] == ';') {
    ++pos;
    skip_space();
  }
  if (pos != text.size()) return false;
  *out = value;
  return true;
}

}  // namespace

Result<QueryResult> Engine::Execute(const std::string& statement) {
  uint64_t timeout_ms = 0;
  if (ParseSetStatementTimeout(statement, &timeout_ms)) {
    statement_timeout_ms_ = timeout_ms;
    return QueryResult{};
  }
  SEGDIFF_ASSIGN_OR_RETURN(Statement parsed, Parse(statement));
  return Execute(parsed);
}

QueryContext Engine::StatementContext() const {
  QueryContext ctx = injected_ctx_;
  if (statement_timeout_ms_ > 0) {
    ctx.deadline = Deadline::Earlier(
        ctx.deadline, Deadline::AfterMillis(statement_timeout_ms_));
  }
  return ctx;
}

Result<QueryResult> Engine::Execute(const Statement& statement) {
  switch (statement.kind) {
    case StatementKind::kCreateTable:
      return ExecuteCreateTable(statement.create_table);
    case StatementKind::kCreateIndex:
      return ExecuteCreateIndex(statement.create_index);
    case StatementKind::kInsert:
      return ExecuteInsert(statement.insert);
    case StatementKind::kSelect:
      return ExecuteSelect(statement.select, statement.explain);
    case StatementKind::kDelete:
      return ExecuteDelete(statement.del);
    case StatementKind::kShowTables:
      return ExecuteShowTables();
    case StatementKind::kDescribe:
      return ExecuteDescribe(statement.describe);
  }
  return Status::Internal("unknown statement kind");
}

Result<QueryResult> Engine::ExecuteCreateTable(const CreateTableStmt& stmt) {
  std::vector<Column> columns;
  for (const ColumnDef& def : stmt.columns) {
    columns.push_back(Column{def.name, def.type});
  }
  SEGDIFF_ASSIGN_OR_RETURN(TableSchema schema,
                           TableSchema::Create(std::move(columns)));
  SEGDIFF_RETURN_IF_ERROR(
      db_->CreateTable(stmt.table, std::move(schema)).status());
  return QueryResult{};
}

Result<QueryResult> Engine::ExecuteCreateIndex(const CreateIndexStmt& stmt) {
  SEGDIFF_ASSIGN_OR_RETURN(Table * table, db_->GetTable(stmt.table));
  SEGDIFF_RETURN_IF_ERROR(
      table->CreateIndex(stmt.index, stmt.columns).status());
  if (db_->wal() != nullptr) {
    // The index build is not WAL-logged; checkpoint so the catalog
    // registers it durably before any logged inserts reference it.
    SEGDIFF_RETURN_IF_ERROR(db_->Checkpoint());
  }
  return QueryResult{};
}

Result<QueryResult> Engine::ExecuteInsert(const InsertStmt& stmt) {
  SEGDIFF_ASSIGN_OR_RETURN(Table * table, db_->GetTable(stmt.table));
  QueryResult result;
  for (const std::vector<double>& values : stmt.rows) {
    if (values.size() != table->schema().num_columns()) {
      return Status::InvalidArgument("INSERT arity mismatch for table " +
                                     stmt.table);
    }
    Row row;
    row.reserve(values.size());
    for (size_t i = 0; i < values.size(); ++i) {
      if (table->schema().column(i).type == ColumnType::kInt64) {
        row.push_back(Value::Int64(static_cast<int64_t>(values[i])));
      } else {
        row.push_back(Value::Double(values[i]));
      }
    }
    SEGDIFF_RETURN_IF_ERROR(table->Insert(row).status());
    ++result.rows_affected;
  }
  return result;
}

Result<QueryResult> Engine::ExecuteSelect(const SelectStmt& stmt,
                                          bool explain_only) {
  SEGDIFF_ASSIGN_OR_RETURN(Table * table, db_->GetTable(stmt.table));
  const TableSchema& schema = table->schema();
  // Stores written before zone maps existed rebuild theirs on first
  // query; fresh tables maintain them incrementally (no-op here).
  SEGDIFF_RETURN_IF_ERROR(table->EnsureZoneMap());

  // Aggregate bookkeeping (COUNT(*) handled via `matched`).
  const bool value_aggregate = stmt.aggregate != Aggregate::kNone &&
                               stmt.aggregate != Aggregate::kCount;
  size_t aggregate_idx = 0;
  if (value_aggregate) {
    SEGDIFF_ASSIGN_OR_RETURN(aggregate_idx,
                             schema.ColumnIndex(stmt.aggregate_column));
    if (schema.column(aggregate_idx).type != ColumnType::kDouble) {
      return Status::NotSupported("aggregate on non-DOUBLE column " +
                                  stmt.aggregate_column);
    }
  }

  // Output projection.
  QueryResult result;
  std::vector<size_t> projection;
  if (stmt.count) {
    result.columns = {"count"};
  } else if (value_aggregate) {
    static const char* kNames[] = {"", "count", "min", "max", "avg", "sum"};
    result.columns = {std::string(
                          kNames[static_cast<int>(stmt.aggregate)]) +
                      "(" + stmt.aggregate_column + ")"};
  } else if (stmt.star) {
    for (const Column& column : schema.columns()) {
      result.columns.push_back(column.name);
      projection.push_back(projection.size());
    }
  } else {
    for (const std::string& name : stmt.columns) {
      SEGDIFF_ASSIGN_OR_RETURN(size_t idx, schema.ColumnIndex(name));
      result.columns.push_back(name);
      projection.push_back(idx);
    }
  }

  // Full predicate: every WHERE conjunct (also validates column names
  // and rejects comparisons on BIGINT columns, which indexes and the
  // double-typed predicate layer do not support).
  Predicate predicate;
  for (const WhereClause& clause : stmt.where) {
    SEGDIFF_ASSIGN_OR_RETURN(size_t idx, schema.ColumnIndex(clause.column));
    if (schema.column(idx).type != ColumnType::kDouble) {
      return Status::NotSupported("WHERE on non-DOUBLE column " +
                                  clause.column);
    }
    predicate.And(idx, clause.op, clause.value);
  }

  std::optional<size_t> order_column;
  if (stmt.order_by.has_value()) {
    SEGDIFF_ASSIGN_OR_RETURN(size_t idx,
                             schema.ColumnIndex(stmt.order_by->column));
    order_column = idx;
  }

  // Rule-based access path: use an index whose leading column has an
  // upper bound in the WHERE clause (the shape of the paper's range
  // queries); otherwise scan.
  const TableIndex* chosen = nullptr;
  ColumnBounds chosen_bounds;
  for (const TableIndex& index : table->indexes()) {
    const ColumnBounds bounds =
        BoundsFor(stmt.where, index.key_columns[0], schema);
    if (bounds.any && bounds.upper < kInf) {
      chosen = &index;
      chosen_bounds = bounds;
      break;
    }
  }

  if (explain_only) {
    std::string zone_label = "zone map: none";
    if (const ZoneMap* zone_map = table->zone_map()) {
      const ZoneSurvey survey =
          SurveyZones(*zone_map, predicate.conditions());
      zone_label = "zone map: " + std::to_string(survey.zones_surviving) +
                   "/" + std::to_string(survey.zones_total) +
                   " pages match";
    }
    // Per-format storage breakdown: a compacted table answers most of
    // the query from compressed columnar segments, and the plan should
    // say so (pages read, compression ratio, segment-level pruning).
    const Table::FormatBreakdown breakdown = table->GetFormatBreakdown();
    std::string format_label =
        "format: row pages=" + std::to_string(breakdown.row_pages) +
        " rows=" + std::to_string(breakdown.row_rows) +
        "; columnar segments=" + std::to_string(breakdown.columnar_segments) +
        " pages=" + std::to_string(breakdown.columnar_pages) +
        " rows=" + std::to_string(breakdown.columnar_rows);
    std::string compression_label = "compression: none (pure row format)";
    if (breakdown.columnar_encoded_bytes > 0) {
      const double ratio =
          static_cast<double>(breakdown.columnar_logical_bytes) /
          static_cast<double>(breakdown.columnar_encoded_bytes);
      char buf[96];
      std::snprintf(buf, sizeof(buf),
                    "compression: encoded=%llu logical=%llu ratio=%.2fx",
                    static_cast<unsigned long long>(
                        breakdown.columnar_encoded_bytes),
                    static_cast<unsigned long long>(
                        breakdown.columnar_logical_bytes),
                    ratio);
      compression_label = buf;
    }
    std::string segment_label = "segment dir: none";
    if (const ColumnStore* columnar = table->columnar()) {
      const ColumnarSurvey survey =
          SurveyColumnarSegments(*columnar, predicate.conditions());
      segment_label =
          "segment dir: " + std::to_string(survey.segments_surviving) + "/" +
          std::to_string(survey.segments_total) + " segments match";
    }
    result.columns = {"plan"};
    result.rows.assign(7, Row{});
    result.row_labels = {
        std::string("table ") + stmt.table + " (" +
            std::to_string(table->row_count()) + " rows)",
        chosen != nullptr ? "access: index_scan(" + chosen->name + ")"
                          : "access: seq_scan",
        "residual conjuncts: " + std::to_string(stmt.where.size()),
        std::move(zone_label),
        std::move(format_label),
        std::move(compression_label),
        std::move(segment_label),
    };
    result.access_path = "explain";
    return result;
  }

  uint64_t matched = 0;
  double agg_min = kInf;
  double agg_max = -kInf;
  double agg_sum = 0.0;
  std::vector<Row> rows;
  const bool need_rows =
      (!stmt.count && !value_aggregate) || order_column.has_value();
  auto collect = [&](const char* record, RecordId) -> Status {
    ++matched;
    if (value_aggregate) {
      const double v = DecodeDoubleColumn(record, aggregate_idx);
      agg_min = std::min(agg_min, v);
      agg_max = std::max(agg_max, v);
      agg_sum += v;
    }
    if (need_rows) {
      rows.push_back(DecodeRow(schema, record));
    }
    return Status::OK();
  };

  // Statement governance: the session timeout (and any injected cancel
  // token) bounds the scan below; checks happen at page granularity.
  const QueryContext ctx = StatementContext();
  SEGDIFF_RETURN_IF_ERROR(ctx.Check());

  if (chosen != nullptr) {
    result.access_path = "index_scan(" + chosen->name + ")";
    IndexScanSpec spec;
    spec.context = &ctx;
    // Quarantined pages degrade to a flagged partial result (see
    // QueryResult::partial) rather than failing the statement.
    spec.skip_quarantined = true;
    spec.index = chosen->tree.get();
    IndexKey lower;
    for (int i = 0; i < kMaxIndexArity; ++i) {
      lower.vals[i] = -kInf;
    }
    lower.vals[0] = chosen_bounds.lower;
    lower.rid = 0;
    spec.lower = lower;
    const double upper = chosen_bounds.upper;
    const bool upper_inclusive = chosen_bounds.upper_inclusive;
    spec.key_continue = [upper, upper_inclusive](const IndexKey& key) {
      return upper_inclusive ? key.vals[0] <= upper : key.vals[0] < upper;
    };
    SEGDIFF_RETURN_IF_ERROR(IndexScan(*table, spec, predicate, collect,
                                      &result.scan_stats));
  } else {
    result.access_path = "seq_scan";
    SeqScanOptions scan_options;
    scan_options.context = &ctx;
    scan_options.skip_quarantined = true;
    SEGDIFF_RETURN_IF_ERROR(SeqScan(*table, predicate, collect,
                                    &result.scan_stats, scan_options));
  }
  result.partial = result.scan_stats.pages_quarantined > 0 ||
                   result.scan_stats.rows_quarantined > 0;

  if (order_column.has_value()) {
    const size_t column = *order_column;
    const bool ascending = stmt.order_by->ascending;
    std::stable_sort(rows.begin(), rows.end(),
                     [column, ascending](const Row& a, const Row& b) {
                       const double x = a[column].type == ColumnType::kInt64
                                            ? static_cast<double>(a[column].i)
                                            : a[column].d;
                       const double y = b[column].type == ColumnType::kInt64
                                            ? static_cast<double>(b[column].i)
                                            : b[column].d;
                       return ascending ? x < y : x > y;
                     });
  }
  if (stmt.limit.has_value() && rows.size() > *stmt.limit) {
    rows.resize(*stmt.limit);
  }

  if (stmt.count) {
    // LIMIT applies to result rows; COUNT(*) yields one row regardless.
    result.rows.push_back({Value::Int64(static_cast<int64_t>(matched))});
    return result;
  }
  if (value_aggregate) {
    if (matched == 0 && stmt.aggregate != Aggregate::kSum) {
      return result;  // MIN/MAX/AVG of nothing: empty result set
    }
    double out = 0.0;
    switch (stmt.aggregate) {
      case Aggregate::kMin:
        out = agg_min;
        break;
      case Aggregate::kMax:
        out = agg_max;
        break;
      case Aggregate::kAvg:
        out = agg_sum / static_cast<double>(matched);
        break;
      case Aggregate::kSum:
        out = agg_sum;
        break;
      case Aggregate::kNone:
      case Aggregate::kCount:
        return Status::Internal("unexpected aggregate");
    }
    result.rows.push_back({Value::Double(out)});
    return result;
  }

  result.rows.reserve(rows.size());
  for (Row& row : rows) {
    Row projected;
    projected.reserve(projection.size());
    for (size_t idx : projection) {
      projected.push_back(row[idx]);
    }
    result.rows.push_back(std::move(projected));
  }
  return result;
}

Result<QueryResult> Engine::ExecuteDelete(const DeleteStmt& stmt) {
  SEGDIFF_ASSIGN_OR_RETURN(Table * table, db_->GetTable(stmt.table));
  const TableSchema& schema = table->schema();
  Predicate predicate;
  for (const WhereClause& clause : stmt.where) {
    SEGDIFF_ASSIGN_OR_RETURN(size_t idx, schema.ColumnIndex(clause.column));
    if (schema.column(idx).type != ColumnType::kDouble) {
      return Status::NotSupported("WHERE on non-DOUBLE column " +
                                  clause.column);
    }
    predicate.And(idx, clause.op, clause.value);
  }
  QueryResult result;
  SEGDIFF_ASSIGN_OR_RETURN(result.rows_affected,
                           table->DeleteWhere(predicate));
  if (db_->wal() != nullptr) {
    // DeleteWhere rewrites the heap in place under Wal::Suspend, which
    // invalidates the ordinals of every logged row append; checkpoint
    // (flush + log truncate) before anything else can crash-recover
    // against the compacted table.
    SEGDIFF_RETURN_IF_ERROR(db_->Checkpoint());
  }
  result.access_path = "rewrite";
  return result;
}

Result<QueryResult> Engine::ExecuteShowTables() {
  QueryResult result;
  result.columns = {"table", "rows", "indexes"};
  for (const auto& table : db_->tables()) {
    result.row_labels.push_back(table->name());
    result.rows.push_back(
        {Value::Int64(static_cast<int64_t>(table->row_count())),
         Value::Int64(static_cast<int64_t>(table->indexes().size()))});
  }
  return result;
}

Result<QueryResult> Engine::ExecuteDescribe(const DescribeStmt& stmt) {
  SEGDIFF_ASSIGN_OR_RETURN(Table * table, db_->GetTable(stmt.table));
  QueryResult result;
  result.columns = {"column", "type"};
  for (const Column& column : table->schema().columns()) {
    result.row_labels.push_back(column.name + " " +
                                (column.type == ColumnType::kDouble
                                     ? "DOUBLE"
                                     : "BIGINT"));
    result.rows.push_back({});
  }
  for (const TableIndex& index : table->indexes()) {
    std::string label = "index " + index.name + " (";
    for (size_t i = 0; i < index.key_columns.size(); ++i) {
      if (i > 0) label += ", ";
      label += table->schema().column(index.key_columns[i]).name;
    }
    label += ")";
    result.row_labels.push_back(std::move(label));
    result.rows.push_back({});
  }
  return result;
}

std::string FormatResult(const QueryResult& result) {
  std::string out;
  if (!result.access_path.empty()) {
    out += "-- " + result.access_path + "\n";
  }
  // A scan ran (seq or index): report what pruning + evaluation did.
  const ScanStats& stats = result.scan_stats;
  if (stats.rows_scanned + stats.rows_pruned + stats.pages_scanned +
          stats.pages_pruned >
      0) {
    out += "-- pages scanned=" + std::to_string(stats.pages_scanned) +
           " pruned=" + std::to_string(stats.pages_pruned) +
           ", rows scanned=" + std::to_string(stats.rows_scanned) +
           " pruned=" + std::to_string(stats.rows_pruned) + "\n";
  }
  if (result.partial) {
    out += "-- WARNING: partial result (" +
           std::to_string(stats.pages_quarantined) +
           " quarantined pages skipped, >=" +
           std::to_string(stats.rows_quarantined) + " rows unreadable)\n";
  }
  if (result.columns.empty()) {
    out += "ok";
    if (result.rows_affected > 0) {
      out += " (" + std::to_string(result.rows_affected) + " rows)";
    }
    out += "\n";
    return out;
  }
  for (size_t i = 0; i < result.columns.size(); ++i) {
    if (i > 0) out += " | ";
    out += result.columns[i];
  }
  out += "\n";
  for (size_t r = 0; r < result.rows.size(); ++r) {
    const Row& row = result.rows[r];
    if (r < result.row_labels.size()) {
      out += result.row_labels[r];
      if (!row.empty()) out += " | ";
    }
    for (size_t i = 0; i < row.size(); ++i) {
      if (i > 0) out += " | ";
      out += ValueToString(row[i]);
    }
    out += "\n";
  }
  out += "(" + std::to_string(result.rows.size()) + " rows)\n";
  return out;
}

}  // namespace sql
}  // namespace segdiff
