// AST for the minidb SQL dialect.
//
// Supported statements (enough to drive the paper's workload: schema
// creation, feature loading, and the Section 4.4 range queries):
//
//   CREATE TABLE t (col DOUBLE | BIGINT, ...)
//   CREATE INDEX idx ON t (col, ...)
//   INSERT INTO t VALUES (num, ...)
//   [EXPLAIN] SELECT * | col, ... | COUNT(*) | MIN|MAX|AVG|SUM(col) FROM t
//       [WHERE col op num [AND ...]]
//       [ORDER BY col [ASC|DESC]] [LIMIT n]
//   DELETE FROM t [WHERE col op num [AND ...]]
//   SHOW TABLES
//   DESCRIBE t

#ifndef SEGDIFF_SQL_AST_H_
#define SEGDIFF_SQL_AST_H_

#include <optional>
#include <string>
#include <vector>

#include "query/predicate.h"
#include "storage/record.h"

namespace segdiff {
namespace sql {

struct ColumnDef {
  std::string name;
  ColumnType type = ColumnType::kDouble;
};

struct CreateTableStmt {
  std::string table;
  std::vector<ColumnDef> columns;
};

struct CreateIndexStmt {
  std::string index;
  std::string table;
  std::vector<std::string> columns;
};

struct InsertStmt {
  std::string table;
  std::vector<std::vector<double>> rows;  // VALUES (..), (..), ...
};

/// One "col op value" conjunct.
struct WhereClause {
  std::string column;
  CmpOp op = CmpOp::kEq;
  double value = 0.0;
};

struct OrderBy {
  std::string column;
  bool ascending = true;
};

/// Aggregate function in the select list (at most one, no GROUP BY).
enum class Aggregate : unsigned char {
  kNone = 0,
  kCount,  // COUNT(*)
  kMin,
  kMax,
  kAvg,
  kSum,
};

struct SelectStmt {
  std::string table;
  bool star = false;
  bool count = false;  // SELECT COUNT(*) (same as aggregate == kCount)
  Aggregate aggregate = Aggregate::kNone;
  std::string aggregate_column;  // for kMin/kMax/kAvg/kSum
  std::vector<std::string> columns;
  std::vector<WhereClause> where;
  std::optional<OrderBy> order_by;
  std::optional<uint64_t> limit;
};

struct DeleteStmt {
  std::string table;
  std::vector<WhereClause> where;
};

struct ShowTablesStmt {};

struct DescribeStmt {
  std::string table;
};

enum class StatementKind : unsigned char {
  kCreateTable,
  kCreateIndex,
  kInsert,
  kSelect,
  kDelete,
  kShowTables,
  kDescribe,
};

/// Tagged union of the statement kinds (only the active member is used).
struct Statement {
  StatementKind kind = StatementKind::kSelect;
  bool explain = false;  ///< EXPLAIN prefix: plan only, do not execute
  CreateTableStmt create_table;
  CreateIndexStmt create_index;
  InsertStmt insert;
  SelectStmt select;
  DeleteStmt del;
  DescribeStmt describe;
};

}  // namespace sql
}  // namespace segdiff

#endif  // SEGDIFF_SQL_AST_H_
