#include "sql/lexer.h"

#include <cctype>
#include <cstdlib>
#include <unordered_set>

namespace segdiff {
namespace sql {
namespace {

const std::unordered_set<std::string>& Keywords() {
  static const auto* keywords = new std::unordered_set<std::string>{
      "SELECT", "FROM",  "WHERE",  "AND",    "INSERT", "INTO",
      "VALUES", "CREATE", "TABLE", "INDEX",  "ON",     "DOUBLE",
      "DELETE", "MIN",   "MAX",   "AVG",    "SUM",    "EXPLAIN",
      "BIGINT", "LIMIT",  "COUNT", "ORDER",  "BY",     "ASC",
      "DESC",   "SHOW",   "TABLES", "DESCRIBE",
  };
  return *keywords;
}

bool IsIdentStart(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) != 0 || c == '_';
}
bool IsIdentChar(char c) {
  return IsIdentStart(c) || std::isdigit(static_cast<unsigned char>(c)) != 0;
}

}  // namespace

Result<std::vector<Token>> Tokenize(const std::string& input) {
  std::vector<Token> tokens;
  size_t i = 0;
  const size_t n = input.size();
  while (i < n) {
    const char c = input[i];
    if (std::isspace(static_cast<unsigned char>(c)) != 0) {
      ++i;
      continue;
    }
    Token token;
    token.offset = i;
    if (IsIdentStart(c)) {
      size_t j = i;
      while (j < n && IsIdentChar(input[j])) {
        ++j;
      }
      std::string word = input.substr(i, j - i);
      std::string upper = word;
      for (char& ch : upper) {
        ch = static_cast<char>(std::toupper(static_cast<unsigned char>(ch)));
      }
      if (Keywords().count(upper) != 0) {
        token.type = TokenType::kKeyword;
        token.text = upper;
      } else {
        token.type = TokenType::kIdentifier;
        token.text = std::move(word);
      }
      i = j;
    } else if (std::isdigit(static_cast<unsigned char>(c)) != 0 ||
               ((c == '-' || c == '+' || c == '.') && i + 1 < n &&
                (std::isdigit(static_cast<unsigned char>(input[i + 1])) != 0 ||
                 (input[i + 1] == '.' && i + 2 < n &&
                  std::isdigit(static_cast<unsigned char>(input[i + 2])) !=
                      0)))) {
      char* end = nullptr;
      token.type = TokenType::kNumber;
      token.number = std::strtod(input.c_str() + i, &end);
      if (end == input.c_str() + i) {
        return Status::InvalidArgument("bad number at offset " +
                                       std::to_string(i));
      }
      token.text = input.substr(i, static_cast<size_t>(end - input.c_str()) - i);
      i = static_cast<size_t>(end - input.c_str());
    } else if (c == '\'') {
      size_t j = i + 1;
      while (j < n && input[j] != '\'') {
        ++j;
      }
      if (j >= n) {
        return Status::InvalidArgument("unterminated string at offset " +
                                       std::to_string(i));
      }
      token.type = TokenType::kString;
      token.text = input.substr(i + 1, j - i - 1);
      i = j + 1;
    } else if (c == '<' || c == '>' || c == '!') {
      token.type = TokenType::kSymbol;
      if (i + 1 < n && (input[i + 1] == '=' ||
                        (c == '<' && input[i + 1] == '>'))) {
        token.text = input.substr(i, 2);
        i += 2;
      } else if (c == '!') {
        return Status::InvalidArgument("expected != at offset " +
                                       std::to_string(i));
      } else {
        token.text = std::string(1, c);
        ++i;
      }
    } else if (c == '(' || c == ')' || c == ',' || c == '*' || c == ';' ||
               c == '=') {
      token.type = TokenType::kSymbol;
      token.text = std::string(1, c);
      ++i;
    } else {
      return Status::InvalidArgument("unexpected character '" +
                                     std::string(1, c) + "' at offset " +
                                     std::to_string(i));
    }
    tokens.push_back(std::move(token));
  }
  Token end_token;
  end_token.type = TokenType::kEnd;
  end_token.offset = n;
  tokens.push_back(end_token);
  return tokens;
}

}  // namespace sql
}  // namespace segdiff
