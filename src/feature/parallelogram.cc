#include "feature/parallelogram.h"

#include <algorithm>
#include <cmath>

namespace segdiff {

Result<Parallelogram> Parallelogram::FromSegments(const DataSegment& cd,
                                                  const DataSegment& ab) {
  if (ab.start.t < cd.end.t) {
    return Status::InvalidArgument(
        "segments must be non-overlapping with AB after CD");
  }
  if (!(cd.start.t < cd.end.t) || !(ab.start.t < ab.end.t)) {
    return Status::InvalidArgument("degenerate data segment");
  }
  Parallelogram p;
  const Sample& d = cd.start;
  const Sample& c = cd.end;
  const Sample& b = ab.start;
  const Sample& a = ab.end;
  p.bc_ = {b.t - c.t, b.v - c.v};
  p.bd_ = {b.t - d.t, b.v - d.v};
  p.ac_ = {a.t - c.t, a.v - c.v};
  p.ad_ = {a.t - d.t, a.v - d.v};
  p.k_cd_ = cd.Slope();
  p.k_ab_ = ab.Slope();
  p.self_ = false;
  return p;
}

Parallelogram Parallelogram::FromSelf(const DataSegment& segment) {
  Parallelogram p;
  const FeaturePoint origin{0.0, 0.0};
  const FeaturePoint span{segment.Duration(), segment.Rise()};
  // AB shrunk to a point: BC == AC == (0,0) and BD == AD == span, so the
  // region collapses to the feature segment (0,0)-(duration, rise).
  p.bc_ = origin;
  p.ac_ = origin;
  p.bd_ = span;
  p.ad_ = span;
  p.k_cd_ = segment.Slope();
  p.k_ab_ = segment.Slope();
  p.self_ = true;
  return p;
}

bool Parallelogram::Contains(const FeaturePoint& p, double tol) const {
  // Solve p = bc + alpha * (bd - bc) + beta * (ac - bc).
  const double e1x = bd_.dt - bc_.dt;
  const double e1y = bd_.dv - bc_.dv;
  const double e2x = ac_.dt - bc_.dt;
  const double e2y = ac_.dv - bc_.dv;
  const double px = p.dt - bc_.dt;
  const double py = p.dv - bc_.dv;
  const double det = e1x * e2y - e1y * e2x;
  const double scale = std::max({std::abs(e1x * e2y), std::abs(e1y * e2x),
                                 1e-300});
  if (std::abs(det) < 1e-12 * scale) {
    // Degenerate (collinear edges, e.g. self pairs or equal slopes):
    // check p lies on the segment bc-ad within tolerance.
    const double fx = ad_.dt - bc_.dt;
    const double fy = ad_.dv - bc_.dv;
    const double len2 = fx * fx + fy * fy;
    if (len2 == 0.0) {
      return std::abs(px) <= tol && std::abs(py) <= tol;
    }
    const double s = (px * fx + py * fy) / len2;
    if (s < -tol || s > 1.0 + tol) {
      return false;
    }
    const double rx = px - s * fx;
    const double ry = py - s * fy;
    const double diag = std::sqrt(len2);
    return std::sqrt(rx * rx + ry * ry) <= tol * std::max(1.0, diag);
  }
  const double alpha = (px * e2y - py * e2x) / det;
  const double beta = (e1x * py - e1y * px) / det;
  return alpha >= -tol && alpha <= 1.0 + tol && beta >= -tol &&
         beta <= 1.0 + tol;
}

}  // namespace segdiff
