#include "feature/schema.h"

// Header is self-contained; this translation unit anchors it in the
// library and holds nothing else.
