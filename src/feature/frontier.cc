#include "feature/frontier.h"

#include <algorithm>

namespace segdiff {
namespace {

/// Appends `pt` unless it duplicates the previous corner (degenerate
/// parallelograms collapse corners).
void PushUnique(Frontier* frontier, const FeaturePoint& pt) {
  if (frontier->count > 0 && frontier->pts[frontier->count - 1] == pt) {
    return;
  }
  frontier->pts[frontier->count++] = pt;
}

}  // namespace

Frontier ComputeFrontier(const Parallelogram& p, SearchKind kind) {
  Frontier frontier;
  const double k_min = std::min(p.k_cd(), p.k_ab());
  const double k_max = std::max(p.k_cd(), p.k_ab());
  if (kind == SearchKind::kDrop) {
    // Lower chain: the minimum-slope edge leaves BC; its far corner is AC
    // when that edge is the AB-slope edge, BD when it is the CD-slope edge.
    const FeaturePoint& mid = p.k_ab() <= p.k_cd() ? p.ac() : p.bd();
    PushUnique(&frontier, p.bc());
    if (k_min < 0.0) {
      PushUnique(&frontier, mid);
      if (k_max < 0.0) {
        PushUnique(&frontier, p.ad());
      }
    }
  } else {
    // Upper chain: maximum-slope edge first.
    const FeaturePoint& mid = p.k_ab() >= p.k_cd() ? p.ac() : p.bd();
    PushUnique(&frontier, p.bc());
    if (k_max > 0.0) {
      PushUnique(&frontier, mid);
      if (k_min > 0.0) {
        PushUnique(&frontier, p.ad());
      }
    }
  }
  return frontier;
}

StoredCorners CollectStoredCorners(const Frontier& frontier, double eps,
                                   SearchKind kind) {
  StoredCorners out;
  if (frontier.count == 0) {
    return out;
  }
  const double shift = kind == SearchKind::kDrop ? -eps : eps;
  FeaturePoint shifted[3];
  for (int i = 0; i < frontier.count; ++i) {
    shifted[i] = {frontier.pts[i].dt, frontier.pts[i].dv + shift};
  }
  // A corner "indicates an event" when its shifted dv reaches the event
  // side of zero: <= 0 for drops, >= 0 for jumps.
  auto indicates = [kind](const FeaturePoint& pt) {
    return kind == SearchKind::kDrop ? pt.dv <= 0.0 : pt.dv >= 0.0;
  };
  if (!indicates(shifted[frontier.count - 1])) {
    return out;  // even the extreme corner shows no event: store nothing
  }
  // Keep the suffix from the last corner that does NOT indicate an event
  // (it anchors the crossing edge's line query); keep all if none.
  int first = 0;
  for (int i = frontier.count - 1; i >= 0; --i) {
    if (!indicates(shifted[i])) {
      first = i;
      break;
    }
  }
  for (int i = first; i < frontier.count; ++i) {
    out.pts[out.count++] = shifted[i];
  }
  return out;
}

}  // namespace segdiff
