// FeatureSink: the unified observation-at-a-time ingest contract.
//
// Both index kinds (SegDiffIndex's segment -> feature pipeline and
// ExhIndex's exhaustive pair table) ingest a live feed through the same
// interface: one AppendObservation(t, v) call per arriving sample. The
// pipeline is a pure function of the observation sequence, so any
// chunking of the same feed — one observation at a time, arbitrary
// chunks via AppendSeries, or whole series via IngestSeries — produces
// byte-identical feature tables, provided pending state is flushed at
// the same point.
//
//   AppendObservation   never forces a segment boundary; features for
//                       the open trailing window become searchable only
//                       once the window closes naturally or is flushed.
//   FlushPending        finalizes the open trailing state so everything
//                       appended so far is searchable. Appending may
//                       continue afterwards; for SegDiff the next
//                       segment is anchored at the flushed endpoint, so
//                       the approximation stays contiguous.
//   IngestSeries        batch convenience: AppendSeries + FlushPending,
//                       preserving the historical one-shot contract.
//
// Implementations persist their pending state (open segment, pair
// windows) into the store on Checkpoint/close, so a reopened store
// resumes appending exactly where it left off.
//
// Durability (WAL-backed stores): AppendObservation logs the
// observation to the write-ahead log before touching any table, and
// FlushPending closes the group-commit window — once FlushPending
// returns OK, every observation appended so far survives a crash
// (acknowledged means durable). Recovery replays the logged
// observations through the same pipeline, so a crash between flushes
// loses at most the tail after the last group commit. Appends and
// flushes may run concurrently with searches: each search reads a
// point-in-time snapshot taken on an append boundary.

#ifndef SEGDIFF_FEATURE_SINK_H_
#define SEGDIFF_FEATURE_SINK_H_

#include <cstdint>

#include "common/result.h"
#include "ts/series.h"

namespace segdiff {

class FeatureSink {
 public:
  virtual ~FeatureSink() = default;

  /// Feeds the next observation; time stamps must be strictly increasing
  /// across the entire lifetime of the store (including across reopens).
  virtual Status AppendObservation(double t, double v) = 0;

  /// AppendObservation, for callers holding a Sample.
  Status AppendSample(const Sample& sample) {
    return AppendObservation(sample.t, sample.v);
  }

  /// Streams every sample of `series` through AppendObservation without
  /// flushing: the natural call for one chunk of a continuing feed.
  virtual Status AppendSeries(const Series& series);

  /// Finalizes pending ingest state (e.g. the open trailing segment) so
  /// all appended data is searchable. Idempotent; appending may resume.
  virtual Status FlushPending() = 0;

  /// Batch ingest: AppendSeries + FlushPending.
  virtual Status IngestSeries(const Series& series);

  /// Observations consumed over the store's lifetime.
  virtual uint64_t num_observations() const = 0;
};

}  // namespace segdiff

#endif  // SEGDIFF_FEATURE_SINK_H_
