// Feature record produced by extraction, and the byte accounting used in
// the paper's compression analysis (Section 5.2).

#ifndef SEGDIFF_FEATURE_SCHEMA_H_
#define SEGDIFF_FEATURE_SCHEMA_H_

#include <cstddef>

#include "feature/cases.h"
#include "feature/frontier.h"

namespace segdiff {

/// Identifies the ordered segment pair ((t_D, t_C), (t_B, t_A)) a feature
/// row belongs to. t_D may be the window-truncation point rather than a
/// real segment boundary (Algorithm 1 line 4). For self pairs,
/// (t_d, t_c) == (t_b, t_a).
struct PairId {
  double t_d = 0.0;
  double t_c = 0.0;
  double t_b = 0.0;
  double t_a = 0.0;

  friend bool operator==(const PairId& x, const PairId& y) {
    return x.t_d == y.t_d && x.t_c == y.t_c && x.t_b == y.t_b &&
           x.t_a == y.t_a;
  }
};

/// One extracted feature row: the eps-shifted frontier corners of one
/// segment pair for one search kind.
struct PairFeatures {
  PairId id;
  SearchKind kind = SearchKind::kDrop;
  SlopeCase slope_case = SlopeCase::kCase1;  ///< meaningful for cross pairs
  bool self_pair = false;
  StoredCorners corners;  ///< count in [1, 3]; dv values already shifted
};

/// Columns per stored feature row in OUR layout: both coordinates of each
/// of the k corners plus the three pair-identifying time stamps
/// (t_A is recomputed from the segment directory): 2k + 3.
constexpr size_t FeatureColumns(int corner_count) {
  return 2 * static_cast<size_t>(corner_count) + 3;
}

/// Columns per row in the PAPER's accounting (Section 5.2: c2 = 5, 6, 7
/// for 1, 2, 3 corners, i.e. k + 4). The paper elides the dt coordinates
/// of trailing corners; its own Section 4.4 indexes need them, so we store
/// them — see DESIGN.md. Exposed for the storage-accounting ablation.
constexpr size_t PaperFeatureColumns(int corner_count) {
  return static_cast<size_t>(corner_count) + 4;
}

/// Columns per row of the Exh baseline (dt, dv, anchor time stamp).
constexpr size_t kExhColumns = 3;

}  // namespace segdiff

#endif  // SEGDIFF_FEATURE_SCHEMA_H_
