#include "feature/cases.h"

namespace segdiff {

std::string_view SearchKindName(SearchKind kind) {
  return kind == SearchKind::kDrop ? "drop" : "jump";
}

SlopeCase ClassifySlopeCase(double k_cd, double k_ab) {
  if (k_cd >= 0.0) {
    if (k_ab >= k_cd) {
      return SlopeCase::kCase2;
    }
    if (k_ab <= 0.0) {
      return SlopeCase::kCase1;
    }
    return SlopeCase::kCase3;
  }
  if (k_ab >= 0.0) {
    return SlopeCase::kCase4;
  }
  if (k_ab <= k_cd) {
    return SlopeCase::kCase5;
  }
  return SlopeCase::kCase6;
}

int TableTwoCornerCount(SlopeCase slope_case, SearchKind kind) {
  if (kind == SearchKind::kDrop) {
    switch (slope_case) {
      case SlopeCase::kCase1:
        return 2;  // BC, AC
      case SlopeCase::kCase2:
      case SlopeCase::kCase3:
        return 1;  // BC
      case SlopeCase::kCase4:
        return 2;  // BC, BD
      case SlopeCase::kCase5:
      case SlopeCase::kCase6:
        return 3;  // BC, AC/BD, AD
    }
  } else {
    switch (slope_case) {
      case SlopeCase::kCase1:
        return 2;  // BC, BD
      case SlopeCase::kCase2:
      case SlopeCase::kCase3:
        return 3;  // BC, AC/BD, AD
      case SlopeCase::kCase4:
        return 2;  // BC, AC
      case SlopeCase::kCase5:
      case SlopeCase::kCase6:
        return 1;  // BC
    }
  }
  return 0;
}

std::string_view SlopeCaseName(SlopeCase slope_case) {
  switch (slope_case) {
    case SlopeCase::kCase1:
      return "case1";
    case SlopeCase::kCase2:
      return "case2";
    case SlopeCase::kCase3:
      return "case3";
    case SlopeCase::kCase4:
      return "case4";
    case SlopeCase::kCase5:
      return "case5";
    case SlopeCase::kCase6:
      return "case6";
  }
  return "unknown";
}

}  // namespace segdiff
