#include "feature/extractor.h"

#include <cmath>
#include <limits>
#include <utility>

#include "feature/frontier.h"

namespace segdiff {

FeatureExtractor::FeatureExtractor(const ExtractorOptions& options, Sink sink)
    : options_(options), sink_(std::move(sink)) {}

Status FeatureExtractor::EmitPair(const Parallelogram& parallelogram,
                                  const PairId& id, bool self_pair) {
  const SlopeCase slope_case =
      ClassifySlopeCase(parallelogram.k_cd(), parallelogram.k_ab());
  if (!self_pair) {
    ++stats_.case_hist[static_cast<int>(slope_case)];
  }
  for (SearchKind kind : {SearchKind::kDrop, SearchKind::kJump}) {
    if (kind == SearchKind::kDrop && !options_.collect_drops) {
      continue;
    }
    if (kind == SearchKind::kJump && !options_.collect_jumps) {
      continue;
    }
    const Frontier frontier = ComputeFrontier(parallelogram, kind);
    if (!self_pair && frontier.count >= 1 && frontier.count <= 3) {
      ++stats_.frontier_hist[static_cast<int>(kind)][frontier.count];
    }
    const StoredCorners corners =
        CollectStoredCorners(frontier, options_.eps, kind);
    if (corners.count == 0) {
      continue;
    }
    PairFeatures row;
    row.id = id;
    row.kind = kind;
    row.slope_case = slope_case;
    row.self_pair = self_pair;
    row.corners = corners;
    ++stats_.rows_emitted;
    stats_.corners_emitted += static_cast<uint64_t>(corners.count);
    SEGDIFF_RETURN_IF_ERROR(sink_(row));
  }
  return Status::OK();
}

Status FeatureExtractor::AddSegment(const DataSegment& segment) {
  if (options_.eps < 0.0) {
    return Status::InvalidArgument("eps must be >= 0");
  }
  if (options_.window_s <= 0.0) {
    return Status::InvalidArgument("window_s must be positive");
  }
  if (!(segment.start.t < segment.end.t)) {
    return Status::InvalidArgument("degenerate data segment");
  }
  if (has_last_ && segment.start.t < last_end_t_) {
    return Status::InvalidArgument(
        "segments must arrive in temporal order without overlap");
  }
  ++stats_.segments_in;
  last_end_t_ = segment.end.t;
  has_last_ = true;

  const double win_start = segment.start.t - options_.window_s;

  // Evict segments that cannot contribute to this or any later window
  // (window starts only move right as segments arrive in time order).
  while (!window_.empty() && window_.front().end.t <= win_start) {
    window_.pop_front();
  }

  // Self pair first: events inside the new segment itself.
  if (options_.include_self_pairs) {
    ++stats_.self_pairs;
    const PairId self_id{segment.start.t, segment.end.t, segment.start.t,
                         segment.end.t};
    SEGDIFF_RETURN_IF_ERROR(
        EmitPair(Parallelogram::FromSelf(segment), self_id, true));
  }

  for (const DataSegment& prev : window_) {
    DataSegment cd = prev;
    if (cd.start.t < win_start) {
      // Algorithm 1 line 4: truncate CD to start at win.start.
      cd.start = Sample{win_start, prev.ValueAt(win_start)};
    }
    ++stats_.cross_pairs;
    SEGDIFF_ASSIGN_OR_RETURN(Parallelogram parallelogram,
                             Parallelogram::FromSegments(cd, segment));
    const PairId id{cd.start.t, cd.end.t, segment.start.t, segment.end.t};
    SEGDIFF_RETURN_IF_ERROR(EmitPair(parallelogram, id, false));
  }

  window_.push_back(segment);
  return Status::OK();
}

ExtractorState FeatureExtractor::SaveState() const {
  ExtractorState state;
  state.window.assign(window_.begin(), window_.end());
  state.last_end_t = last_end_t_;
  state.has_last = has_last_;
  state.stats = stats_;
  return state;
}

Status FeatureExtractor::RestoreState(const ExtractorState& state) {
  double prev_end = -std::numeric_limits<double>::infinity();
  for (const DataSegment& segment : state.window) {
    if (!(segment.start.t < segment.end.t) || segment.start.t < prev_end) {
      return Status::InvalidArgument(
          "extractor state window is not a temporal segment chain");
    }
    prev_end = segment.end.t;
  }
  if (state.has_last && !state.window.empty() &&
      state.window.back().end.t > state.last_end_t) {
    return Status::InvalidArgument(
        "extractor state last_end_t precedes its window");
  }
  window_.assign(state.window.begin(), state.window.end());
  last_end_t_ = state.last_end_t;
  has_last_ = state.has_last;
  stats_ = state.stats;
  return Status::OK();
}

Status ExtractFeatures(const PiecewiseLinear& pla,
                       const ExtractorOptions& options,
                       const FeatureExtractor::Sink& sink,
                       ExtractorStats* stats) {
  FeatureExtractor extractor(options, sink);
  for (const DataSegment& segment : pla.segments()) {
    SEGDIFF_RETURN_IF_ERROR(extractor.AddSegment(segment));
  }
  if (stats != nullptr) {
    *stats = extractor.stats();
  }
  return Status::OK();
}

}  // namespace segdiff
