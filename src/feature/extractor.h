// Online feature extraction (paper Algorithm 1).
//
// For every newly produced data segment AB, the extractor pairs it with
// every previous segment CD whose end lies inside the time window
// (t_B - w, t_A], truncating CD at win.start = t_B - w when it starts
// earlier, plus AB itself (the degenerate self pair that captures events
// within one segment). Each pair yields up to one drop and one jump
// feature row via frontier reduction + eps-shift collection.

#ifndef SEGDIFF_FEATURE_EXTRACTOR_H_
#define SEGDIFF_FEATURE_EXTRACTOR_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <vector>

#include "common/result.h"
#include "feature/schema.h"
#include "segment/pla.h"
#include "segment/segment.h"

namespace segdiff {

/// Extraction parameters.
struct ExtractorOptions {
  double eps = 0.2;          ///< user error tolerance (segmentation ran at eps/2)
  double window_s = 28800.0; ///< w: longest supported query time span (8 h)
  bool collect_drops = true;
  bool collect_jumps = true;
  bool include_self_pairs = true;
};

/// Counters for analysis benches (Tables 3-4) and sanity checks.
struct ExtractorStats {
  uint64_t segments_in = 0;
  uint64_t cross_pairs = 0;
  uint64_t self_pairs = 0;
  uint64_t rows_emitted = 0;     ///< PairFeatures with >= 1 corner
  uint64_t corners_emitted = 0;  ///< total stored corner points
  /// Frontier-size histogram over cross pairs, [kind][corner_count 1..3]
  /// (index 0 unused). Drop row reproduces the paper's Table 4.
  uint64_t frontier_hist[2][4] = {{0, 0, 0, 0}, {0, 0, 0, 0}};
  /// Cross pairs by Table 2 slope case (index 1..6; 0 unused).
  uint64_t case_hist[7] = {0, 0, 0, 0, 0, 0, 0};
};

/// A snapshot of the extractor's pair window and counters, sufficient to
/// resume extraction in a new instance (or a new process: SegDiffIndex
/// serializes this into its store so reopened stores keep appending).
struct ExtractorState {
  std::vector<DataSegment> window;  ///< previous segments, oldest first
  double last_end_t = 0.0;
  bool has_last = false;
  ExtractorStats stats;
};

/// Streaming extractor; emits feature rows through the sink in the order
/// pairs are formed. Segments must arrive in temporal order and must not
/// overlap (contiguous chains from the segmenter always qualify).
class FeatureExtractor {
 public:
  using Sink = std::function<Status(const PairFeatures&)>;

  /// Fails later (in AddSegment) if options are invalid.
  FeatureExtractor(const ExtractorOptions& options, Sink sink);

  /// Processes one new data segment.
  Status AddSegment(const DataSegment& segment);

  /// Snapshot of the pair window for later RestoreState.
  ExtractorState SaveState() const;

  /// Replaces the extractor's entire state with `state` (as produced by
  /// SaveState, possibly in a previous process).
  Status RestoreState(const ExtractorState& state);

  const ExtractorStats& stats() const { return stats_; }

 private:
  Status EmitPair(const Parallelogram& parallelogram, const PairId& id,
                  bool self_pair);

  ExtractorOptions options_;
  Sink sink_;
  std::deque<DataSegment> window_;  ///< previous segments, oldest first
  double last_end_t_ = 0.0;
  bool has_last_ = false;
  ExtractorStats stats_;
};

/// Convenience: runs the extractor over a whole approximation.
Status ExtractFeatures(const PiecewiseLinear& pla,
                       const ExtractorOptions& options,
                       const FeatureExtractor::Sink& sink,
                       ExtractorStats* stats = nullptr);

}  // namespace segdiff

#endif  // SEGDIFF_FEATURE_EXTRACTOR_H_
