#include "feature/sink.h"

namespace segdiff {

Status FeatureSink::AppendSeries(const Series& series) {
  for (const Sample& sample : series) {
    SEGDIFF_RETURN_IF_ERROR(AppendObservation(sample.t, sample.v));
  }
  return Status::OK();
}

Status FeatureSink::IngestSeries(const Series& series) {
  SEGDIFF_RETURN_IF_ERROR(AppendSeries(series));
  return FlushPending();
}

}  // namespace segdiff
