// Frontier reduction and eps-shifted feature collection
// (paper Section 4.3.1 + appendix, unified).
//
// A drop query region {0 < dt <= T, dv <= V < 0} is downward-closed, so a
// parallelogram intersects it iff its *lower-left frontier* — the chain of
// coordinate-wise-minimal boundary points — does. Walking the lower chain
// BC -> mid -> AD (minimum-slope edge first, mid = AC if k_AB <= k_CD else
// BD), the frontier is:
//   both slopes >= 0        -> {BC}               (Table 2 cases 2, 3)
//   min < 0 <= max          -> {BC, mid}          (cases 1, 4)
//   both slopes < 0         -> {BC, mid, AD}      (cases 5, 6)
// Jump search mirrors this with the upper-left (maximal) frontier.
//
// Collection (Lemma 4): frontier corners are shifted by -eps (drop) /
// +eps (jump); the stored set is the suffix of the frontier starting at
// the last corner whose shifted dv is still on the wrong side of zero
// (that corner anchors the line query for the crossing edge). Nothing is
// stored when even the final corner cannot indicate an event.

#ifndef SEGDIFF_FEATURE_FRONTIER_H_
#define SEGDIFF_FEATURE_FRONTIER_H_

#include "feature/cases.h"
#include "feature/parallelogram.h"

namespace segdiff {

/// Up to three feature points in strictly increasing dt order with
/// strictly monotone dv (decreasing for drop, increasing for jump).
struct Frontier {
  int count = 0;
  FeaturePoint pts[3];
};

/// Computes the query-relevant frontier of `p` for `kind`. Consecutive
/// duplicate corners (degenerate parallelograms) are collapsed.
Frontier ComputeFrontier(const Parallelogram& p, SearchKind kind);

/// eps-shifted corners selected for storage.
struct StoredCorners {
  int count = 0;          ///< 0 == nothing to store for this pair/kind
  FeaturePoint pts[3];    ///< dv already shifted by -eps (drop) / +eps (jump)
};

/// Applies the shift-and-suffix collection rule. `eps >= 0`.
StoredCorners CollectStoredCorners(const Frontier& frontier, double eps,
                                   SearchKind kind);

}  // namespace segdiff

#endif  // SEGDIFF_FEATURE_FRONTIER_H_
