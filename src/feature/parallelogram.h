// Feature space and feature parallelograms (paper Sections 3 and 4.2).
//
// Feature space has axes (dt, dv). An event between time points t' < t''
// maps to the feature point (t'' - t', v'' - v'). For two data segments
// CD (earlier) and AB (later), the parallelogram with corners
//   BC = (t_B - t_C, v_B - v_C)   BD = (t_B - t_D, v_B - v_D)
//   AC = (t_A - t_C, v_A - v_C)   AD = (t_A - t_D, v_A - v_D)
// captures exactly the feature points of all events with one end on CD
// and the other on AB (Lemma 3). Edges (BC,BD)/(AC,AD) have slope k_CD;
// edges (BC,AC)/(BD,AD) have slope k_AB.

#ifndef SEGDIFF_FEATURE_PARALLELOGRAM_H_
#define SEGDIFF_FEATURE_PARALLELOGRAM_H_

#include "common/result.h"
#include "segment/segment.h"

namespace segdiff {

/// A point (dt, dv) in feature space.
struct FeaturePoint {
  double dt = 0.0;
  double dv = 0.0;

  friend bool operator==(const FeaturePoint& a, const FeaturePoint& b) {
    return a.dt == b.dt && a.dv == b.dv;
  }
};

/// Feature parallelogram of an ordered segment pair, or the degenerate
/// feature segment of a single data segment paired with itself.
class Parallelogram {
 public:
  /// Builds the parallelogram for earlier segment `cd` and later segment
  /// `ab`. Requires ab.start.t >= cd.end.t (non-overlapping, AB later);
  /// fails with InvalidArgument otherwise.
  static Result<Parallelogram> FromSegments(const DataSegment& cd,
                                            const DataSegment& ab);

  /// Degenerate form for events within one segment: the feature segment
  /// from (0, 0) to (duration, rise). Both slopes equal the segment's.
  static Parallelogram FromSelf(const DataSegment& segment);

  const FeaturePoint& bc() const { return bc_; }
  const FeaturePoint& bd() const { return bd_; }
  const FeaturePoint& ac() const { return ac_; }
  const FeaturePoint& ad() const { return ad_; }
  double k_cd() const { return k_cd_; }
  double k_ab() const { return k_ab_; }
  /// True for the FromSelf degenerate form.
  bool is_self() const { return self_; }

  /// Whether `p` lies inside or on the parallelogram, with absolute
  /// slack `tol` in the barycentric coordinates (testing helper).
  bool Contains(const FeaturePoint& p, double tol = 1e-9) const;

 private:
  FeaturePoint bc_, bd_, ac_, ad_;
  double k_cd_ = 0.0;
  double k_ab_ = 0.0;
  bool self_ = false;
};

}  // namespace segdiff

#endif  // SEGDIFF_FEATURE_PARALLELOGRAM_H_
