// The paper's Table 2: classification of a segment pair by the signs and
// order of the two slopes, and the corner points each case needs.
//
// The classifier is redundant with the frontier computation
// (feature/frontier.h) by construction; it exists (1) to reproduce the
// Table 4 corner-distribution experiment in the paper's own vocabulary
// and (2) as an independent cross-check in tests.

#ifndef SEGDIFF_FEATURE_CASES_H_
#define SEGDIFF_FEATURE_CASES_H_

#include <string_view>

namespace segdiff {

/// Search direction: drops (dv <= V < 0) or jumps (dv >= V > 0).
enum class SearchKind : unsigned char { kDrop = 0, kJump = 1 };

std::string_view SearchKindName(SearchKind kind);

/// Paper Table 2 cases. Boundary convention (ties resolved so every slope
/// pair maps to exactly one case):
///   k_CD >= 0:  case 2 if k_AB >= k_CD; case 1 if k_AB <= 0;
///               case 3 otherwise (0 < k_AB < k_CD).
///   k_CD <  0:  case 4 if k_AB >= 0; case 5 if k_AB <= k_CD;
///               case 6 otherwise (k_CD < k_AB < 0).
/// (Table 2 prints case 5 as "k_AB >= k_CD"; the appendix text and the
/// geometry give k_AB <= k_CD, which we follow.)
enum class SlopeCase : unsigned char {
  kCase1 = 1,
  kCase2 = 2,
  kCase3 = 3,
  kCase4 = 4,
  kCase5 = 5,
  kCase6 = 6,
};

/// Classifies the slope pair per Table 2.
SlopeCase ClassifySlopeCase(double k_cd, double k_ab);

/// Number of boundary corner points Table 2 lists for the case and search
/// kind (the maximum across the case's sub-cases, e.g. case 5 drop -> 3).
int TableTwoCornerCount(SlopeCase slope_case, SearchKind kind);

std::string_view SlopeCaseName(SlopeCase slope_case);

}  // namespace segdiff

#endif  // SEGDIFF_FEATURE_CASES_H_
