#include "benchutil/report.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <system_error>
#include <utility>

namespace segdiff {

TablePrinter::TablePrinter(std::vector<std::string> headers)
    : headers_(std::move(headers)) {}

void TablePrinter::AddRow(std::vector<std::string> cells) {
  cells.resize(headers_.size());
  rows_.push_back(std::move(cells));
}

void TablePrinter::Print(std::ostream& os) const {
  std::vector<size_t> widths(headers_.size());
  for (size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
    for (const auto& row : rows_) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto print_row = [&](const std::vector<std::string>& cells) {
    for (size_t c = 0; c < cells.size(); ++c) {
      os << (c == 0 ? "| " : " | ");
      os << cells[c];
      os << std::string(widths[c] - cells[c].size(), ' ');
    }
    os << " |\n";
  };
  print_row(headers_);
  os << '|';
  for (size_t c = 0; c < headers_.size(); ++c) {
    os << std::string(widths[c] + 2, '-') << '|';
  }
  os << '\n';
  for (const auto& row : rows_) {
    print_row(row);
  }
}

std::string Fmt(double value, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, value);
  return buf;
}

std::string HumanBytes(uint64_t bytes) {
  const char* units[] = {"B", "KiB", "MiB", "GiB"};
  double value = static_cast<double>(bytes);
  int unit = 0;
  while (value >= 1024.0 && unit < 3) {
    value /= 1024.0;
    ++unit;
  }
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.2f %s", value, units[unit]);
  return buf;
}

void PrintBanner(std::ostream& os, const std::string& title) {
  os << "\n== " << title << " ==\n";
}

JsonValue JsonValue::Object() { return JsonValue(Kind::kObject); }
JsonValue JsonValue::Array() { return JsonValue(Kind::kArray); }

JsonValue JsonValue::Number(double value) {
  JsonValue v(Kind::kNumber);
  v.num_ = value;
  return v;
}

JsonValue JsonValue::Number(int64_t value) {
  JsonValue v(Kind::kInt);
  v.int_ = value;
  return v;
}

JsonValue JsonValue::String(std::string value) {
  JsonValue v(Kind::kString);
  v.str_ = std::move(value);
  return v;
}

JsonValue JsonValue::Bool(bool value) {
  JsonValue v(Kind::kBool);
  v.bool_ = value;
  return v;
}

void JsonValue::Set(const std::string& key, JsonValue value) {
  members_.emplace_back(key, std::move(value));
}
void JsonValue::Set(const std::string& key, double value) {
  Set(key, Number(value));
}
void JsonValue::Set(const std::string& key, int64_t value) {
  Set(key, Number(value));
}
void JsonValue::Set(const std::string& key, const std::string& value) {
  Set(key, String(value));
}
void JsonValue::Set(const std::string& key, const char* value) {
  Set(key, String(value));
}
void JsonValue::Set(const std::string& key, bool value) {
  Set(key, Bool(value));
}

void JsonValue::Append(JsonValue value) {
  elements_.push_back(std::move(value));
}

namespace {

void AppendEscaped(const std::string& in, std::string* out) {
  out->push_back('"');
  for (const char c : in) {
    switch (c) {
      case '"':
        *out += "\\\"";
        break;
      case '\\':
        *out += "\\\\";
        break;
      case '\n':
        *out += "\\n";
        break;
      case '\t':
        *out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          *out += buf;
        } else {
          out->push_back(c);
        }
    }
  }
  out->push_back('"');
}

}  // namespace

std::string JsonValue::ToString() const {
  std::string out;
  switch (kind_) {
    case Kind::kObject: {
      out.push_back('{');
      bool first = true;
      for (const auto& [key, value] : members_) {
        if (!first) {
          out += ", ";
        }
        first = false;
        AppendEscaped(key, &out);
        out += ": ";
        out += value.ToString();
      }
      out.push_back('}');
      break;
    }
    case Kind::kArray: {
      out.push_back('[');
      for (size_t i = 0; i < elements_.size(); ++i) {
        if (i != 0) {
          out += ", ";
        }
        out += elements_[i].ToString();
      }
      out.push_back(']');
      break;
    }
    case Kind::kNumber: {
      char buf[64];
      // %.17g round-trips doubles; JSON has no inf/nan, emit null.
      if (!std::isfinite(num_)) {
        out += "null";
      } else {
        std::snprintf(buf, sizeof(buf), "%.17g", num_);
        out += buf;
      }
      break;
    }
    case Kind::kInt: {
      out += std::to_string(int_);
      break;
    }
    case Kind::kString:
      AppendEscaped(str_, &out);
      break;
    case Kind::kBool:
      out += bool_ ? "true" : "false";
      break;
  }
  return out;
}

bool WriteJsonFile(const std::string& path, const JsonValue& value) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    return false;
  }
  const std::string text = value.ToString();
  const bool ok = std::fwrite(text.data(), 1, text.size(), f) == text.size() &&
                  std::fputc('\n', f) != EOF;
  return std::fclose(f) == 0 && ok;
}

std::string BenchReportPath(const std::string& filename) {
  const char* dir = std::getenv("SEGDIFF_BENCH_REPORT_DIR");
  if (dir != nullptr && dir[0] != '\0') {
    return std::string(dir) + "/" + filename;
  }
  std::error_code ec;
  std::filesystem::path at = std::filesystem::current_path(ec);
  if (!ec) {
    for (std::filesystem::path probe = at;; probe = probe.parent_path()) {
      if (std::filesystem::exists(probe / "ROADMAP.md", ec)) {
        return (probe / filename).string();
      }
      if (probe == probe.root_path() || probe.parent_path() == probe) {
        break;
      }
    }
  }
  return filename;  // no marker found: current directory, as before
}

}  // namespace segdiff
