#include "benchutil/report.h"

#include <algorithm>
#include <cstdio>
#include <utility>

namespace segdiff {

TablePrinter::TablePrinter(std::vector<std::string> headers)
    : headers_(std::move(headers)) {}

void TablePrinter::AddRow(std::vector<std::string> cells) {
  cells.resize(headers_.size());
  rows_.push_back(std::move(cells));
}

void TablePrinter::Print(std::ostream& os) const {
  std::vector<size_t> widths(headers_.size());
  for (size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
    for (const auto& row : rows_) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto print_row = [&](const std::vector<std::string>& cells) {
    for (size_t c = 0; c < cells.size(); ++c) {
      os << (c == 0 ? "| " : " | ");
      os << cells[c];
      os << std::string(widths[c] - cells[c].size(), ' ');
    }
    os << " |\n";
  };
  print_row(headers_);
  os << '|';
  for (size_t c = 0; c < headers_.size(); ++c) {
    os << std::string(widths[c] + 2, '-') << '|';
  }
  os << '\n';
  for (const auto& row : rows_) {
    print_row(row);
  }
}

std::string Fmt(double value, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, value);
  return buf;
}

std::string HumanBytes(uint64_t bytes) {
  const char* units[] = {"B", "KiB", "MiB", "GiB"};
  double value = static_cast<double>(bytes);
  int unit = 0;
  while (value >= 1024.0 && unit < 3) {
    value /= 1024.0;
    ++unit;
  }
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.2f %s", value, units[unit]);
  return buf;
}

void PrintBanner(std::ostream& os, const std::string& title) {
  os << "\n== " << title << " ==\n";
}

}  // namespace segdiff
