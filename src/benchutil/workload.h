// Shared bench workload configuration.
//
// Every bench binary draws its data from the synthetic CAD transect with
// the paper's default parameters (eps = 0.2 degC, w = 8 h, T = 1 h,
// V = -3 degC; Section 6). SEGDIFF_BENCH_SCALE scales the horizon so the
// same binaries run as quick smoke checks or as full reproductions.

#ifndef SEGDIFF_BENCHUTIL_WORKLOAD_H_
#define SEGDIFF_BENCHUTIL_WORKLOAD_H_

#include <string>

#include "common/result.h"
#include "ts/generator.h"
#include "ts/series.h"

namespace segdiff {

constexpr double kHourSeconds = 3600.0;

/// Paper default query/build parameters (Section 6).
struct PaperDefaults {
  static constexpr double kEps = 0.2;
  static constexpr double kWindowS = 8.0 * kHourSeconds;
  static constexpr double kTSeconds = 1.0 * kHourSeconds;
  static constexpr double kVDegrees = -3.0;
};

/// Bench data-set configuration, environment-overridable.
struct WorkloadConfig {
  uint64_t seed = 20080325;
  int num_days = 14;       ///< per sensor; scaled by SEGDIFF_BENCH_SCALE
  int sensor_count = 1;
  double sample_interval_s = 300.0;
  /// Raw-noise and smoothing calibration: with ar1_sigma = 0.25 and a
  /// robust LOESS at 1500 s bandwidth, the smoothed series reproduces
  /// the paper's Table 3 compression rates (r ~ 4.7..18.6 over
  /// eps = 0.1..1.0) on the default horizon.
  double ar1_sigma = 0.25;
  double loess_bandwidth_s = 1500.0;

  /// Reads SEGDIFF_BENCH_SCALE (float, default 1.0), SEGDIFF_BENCH_DAYS,
  /// SEGDIFF_BENCH_SENSORS, SEGDIFF_BENCH_SEED.
  static WorkloadConfig FromEnv();
};

/// One sensor's series under the config (sensor 0).
Result<CadSeries> MakeBenchSeries(const WorkloadConfig& config);

/// The series the paper actually indexes: generated, anomaly-filtered
/// (Hampel), then smoothed "with robust weights" (robust LOESS).
Result<Series> MakeSmoothedBenchSeries(const WorkloadConfig& config);

/// Generator options matching the config.
CadGeneratorOptions MakeGeneratorOptions(const WorkloadConfig& config);

/// Simulated disk parameters for the timed (cold-cache) benches. The
/// paper's testbed read from a 2007 SATA disk with flushed OS caches;
/// on RAM-backed /tmp both access paths would look free, so the pager
/// injects a per-page latency: `seq_ns` for sequential page reads
/// (bandwidth) and `random_ns` for non-sequential ones (seek). Defaults
/// keep the seek/scan cost ratio of a rotating disk at bench-friendly
/// absolute values; override with SEGDIFF_SIM_SEQ_US /
/// SEGDIFF_SIM_RANDOM_US (0 disables).
struct DiskSim {
  uint64_t seq_ns = 20000;      ///< 20 us/page ~ 400 MB/s scan
  uint64_t random_ns = 400000;  ///< 400 us/page: 20x seek penalty

  static DiskSim FromEnv();
};

/// A fresh temporary file path under TMPDIR for bench databases; the
/// previous file at that path is removed.
std::string BenchDbPath(const std::string& name);

/// Removes a bench database file (best effort).
void RemoveBenchDb(const std::string& path);

}  // namespace segdiff

#endif  // SEGDIFF_BENCHUTIL_WORKLOAD_H_
