#include "benchutil/workload.h"

#include <algorithm>
#include <cstdio>

#include "common/env.h"
#include "ts/smoothing.h"

namespace segdiff {

WorkloadConfig WorkloadConfig::FromEnv() {
  WorkloadConfig config;
  const double scale = GetEnvDouble("SEGDIFF_BENCH_SCALE", 1.0);
  config.num_days = static_cast<int>(
      GetEnvInt64("SEGDIFF_BENCH_DAYS", config.num_days));
  if (scale > 0.0) {
    config.num_days =
        std::max(1, static_cast<int>(config.num_days * scale));
  }
  config.sensor_count = static_cast<int>(
      GetEnvInt64("SEGDIFF_BENCH_SENSORS", config.sensor_count));
  config.seed = static_cast<uint64_t>(
      GetEnvInt64("SEGDIFF_BENCH_SEED", static_cast<int64_t>(config.seed)));
  return config;
}

CadGeneratorOptions MakeGeneratorOptions(const WorkloadConfig& config) {
  CadGeneratorOptions options;
  options.seed = config.seed;
  options.num_days = config.num_days;
  options.sample_interval_s = config.sample_interval_s;
  options.ar1_sigma_c = config.ar1_sigma;
  return options;
}

Result<CadSeries> MakeBenchSeries(const WorkloadConfig& config) {
  return GenerateCadSeries(MakeGeneratorOptions(config));
}

Result<Series> MakeSmoothedBenchSeries(const WorkloadConfig& config) {
  SEGDIFF_ASSIGN_OR_RETURN(CadSeries raw, MakeBenchSeries(config));
  SEGDIFF_ASSIGN_OR_RETURN(Series filtered,
                           HampelFilter(raw.series, HampelOptions{}));
  LoessOptions loess;
  loess.bandwidth_s = config.loess_bandwidth_s;
  loess.robust_iterations = 1;
  return RobustLoess(filtered, loess);
}

DiskSim DiskSim::FromEnv() {
  DiskSim sim;
  sim.seq_ns = static_cast<uint64_t>(
      GetEnvInt64("SEGDIFF_SIM_SEQ_US",
                  static_cast<int64_t>(sim.seq_ns / 1000)) *
      1000);
  sim.random_ns = static_cast<uint64_t>(
      GetEnvInt64("SEGDIFF_SIM_RANDOM_US",
                  static_cast<int64_t>(sim.random_ns / 1000)) *
      1000);
  return sim;
}

std::string BenchDbPath(const std::string& name) {
  const std::string dir = GetEnvString("TMPDIR", "/tmp");
  std::string path = dir + "/segdiff_bench_" + name + ".db";
  RemoveBenchDb(path);
  return path;
}

void RemoveBenchDb(const std::string& path) {
  std::remove(path.c_str());
  // WAL-enabled stores keep a sidecar log beside the database file.
  std::remove((path + ".wal").c_str());
}

}  // namespace segdiff
