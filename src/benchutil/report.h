// Plain-text table/figure output for the bench harness.

#ifndef SEGDIFF_BENCHUTIL_REPORT_H_
#define SEGDIFF_BENCHUTIL_REPORT_H_

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

namespace segdiff {

/// Fixed-width aligned table, printed like the paper's tables.
class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> headers);

  void AddRow(std::vector<std::string> cells);
  void Print(std::ostream& os) const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Fixed-precision double ("1.23").
std::string Fmt(double value, int precision = 2);

/// Human-readable byte count ("12.3 MiB").
std::string HumanBytes(uint64_t bytes);

/// Section banner ("== Table 3: ... ==").
void PrintBanner(std::ostream& os, const std::string& title);

}  // namespace segdiff

#endif  // SEGDIFF_BENCHUTIL_REPORT_H_
