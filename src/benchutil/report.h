// Plain-text table/figure output for the bench harness, plus a minimal
// JSON writer so benches can emit machine-readable BENCH_*.json files
// tracking the perf trajectory across PRs.

#ifndef SEGDIFF_BENCHUTIL_REPORT_H_
#define SEGDIFF_BENCHUTIL_REPORT_H_

#include <cstdint>
#include <ostream>
#include <string>
#include <utility>
#include <vector>

namespace segdiff {

/// Fixed-width aligned table, printed like the paper's tables.
class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> headers);

  void AddRow(std::vector<std::string> cells);
  void Print(std::ostream& os) const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Fixed-precision double ("1.23").
std::string Fmt(double value, int precision = 2);

/// Human-readable byte count ("12.3 MiB").
std::string HumanBytes(uint64_t bytes);

/// Section banner ("== Table 3: ... ==").
void PrintBanner(std::ostream& os, const std::string& title);

/// Insertion-ordered JSON value builder — just enough for bench output
/// (objects, arrays, numbers, strings, booleans). Build bottom-up:
///
///   JsonValue row = JsonValue::Object();
///   row.Set("threads", int64_t{4});
///   row.Set("seconds", 0.123);
///   JsonValue rows = JsonValue::Array();
///   rows.Append(std::move(row));
///   JsonValue root = JsonValue::Object();
///   root.Set("results", std::move(rows));
///   WriteJsonFile("BENCH_parallel.json", root);
class JsonValue {
 public:
  static JsonValue Object();
  static JsonValue Array();
  static JsonValue Number(double value);
  static JsonValue Number(int64_t value);
  static JsonValue String(std::string value);
  static JsonValue Bool(bool value);

  /// Object member (insertion order preserved; duplicate keys appended).
  void Set(const std::string& key, JsonValue value);
  void Set(const std::string& key, double value);
  void Set(const std::string& key, int64_t value);
  void Set(const std::string& key, const std::string& value);
  void Set(const std::string& key, const char* value);
  void Set(const std::string& key, bool value);

  /// Array element.
  void Append(JsonValue value);

  /// Serializes compactly (no whitespace beyond ", ").
  std::string ToString() const;

 private:
  enum class Kind { kObject, kArray, kNumber, kInt, kString, kBool };
  explicit JsonValue(Kind kind) : kind_(kind) {}

  Kind kind_;
  double num_ = 0.0;
  int64_t int_ = 0;
  bool bool_ = false;
  std::string str_;
  std::vector<std::pair<std::string, JsonValue>> members_;  ///< object
  std::vector<JsonValue> elements_;                          ///< array
};

/// Writes `value` (plus trailing newline) to `path`, overwriting.
/// Returns false on IO failure (benches log and continue).
bool WriteJsonFile(const std::string& path, const JsonValue& value);

/// Stable location for a BENCH_*.json report, independent of the
/// directory the bench was launched from (ctest and `--quick` CI runs
/// execute inside the build tree, which previously scattered reports).
/// Resolution order: $SEGDIFF_BENCH_REPORT_DIR if set; else the nearest
/// ancestor of the current directory containing ROADMAP.md (the repo
/// root); else the current directory unchanged.
std::string BenchReportPath(const std::string& filename);

}  // namespace segdiff

#endif  // SEGDIFF_BENCHUTIL_REPORT_H_
