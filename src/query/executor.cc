#include "query/executor.h"

#include <vector>

namespace segdiff {

Status SeqScan(const Table& table, const Predicate& predicate,
               const RowCallback& callback, ScanStats* stats) {
  ScanStats local;
  Status status = table.Scan(
      [&](const char* record, RecordId id, bool* keep_going) -> Status {
        *keep_going = true;
        ++local.rows_scanned;
        if (predicate.Matches(record)) {
          ++local.rows_matched;
          return callback(record, id);
        }
        return Status::OK();
      });
  if (stats != nullptr) {
    stats->Add(local);
  }
  return status;
}

Status IndexScan(const Table& table, const IndexScanSpec& spec,
                 const Predicate& residual, const RowCallback& callback,
                 ScanStats* stats) {
  if (spec.index == nullptr) {
    return Status::InvalidArgument("index scan without index");
  }
  ScanStats local;
  std::vector<char> record(table.schema().RowBytes());
  SEGDIFF_ASSIGN_OR_RETURN(BPlusTree::Iterator it, spec.index->Seek(spec.lower));
  while (it.Valid()) {
    const IndexKey& key = it.key();
    ++local.index_entries_scanned;
    if (spec.key_continue && !spec.key_continue(key)) {
      break;
    }
    if (!spec.key_filter || spec.key_filter(key)) {
      ++local.heap_fetches;
      SEGDIFF_RETURN_IF_ERROR(
          table.ReadRecord(RecordId::Unpack(key.rid), record.data()));
      if (residual.Matches(record.data())) {
        ++local.rows_matched;
        SEGDIFF_RETURN_IF_ERROR(
            callback(record.data(), RecordId::Unpack(key.rid)));
      }
    }
    SEGDIFF_RETURN_IF_ERROR(it.Next());
  }
  if (stats != nullptr) {
    stats->Add(local);
  }
  return Status::OK();
}

}  // namespace segdiff
