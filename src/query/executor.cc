#include "query/executor.h"

#include <algorithm>
#include <bit>
#include <cstddef>
#include <vector>

#include "common/coding.h"
#include "query/scan_kernel.h"
#include "storage/snapshot.h"

namespace segdiff {
namespace {

/// The zone map a scan should prune with: the frozen copy when reading
/// a snapshot (the live map keeps moving under concurrent ingest), the
/// table's live map otherwise.
const ZoneMap* ResolveZoneMap(const Table& table,
                              const SeqScanOptions& options) {
  if (options.snapshot != nullptr) {
    const TableSnapshotView* view = options.snapshot->TableView(table.name());
    return view != nullptr ? view->zone_map.get() : nullptr;
  }
  return table.zone_map();
}

/// Per-scan (per-partition, under ParallelSeqScan) page evaluator.
/// Both modes walk identical pages and count identically, so serial,
/// parallel, batched, and row-at-a-time scans all agree on
/// rows_scanned + rows_pruned and pages_scanned + pages_pruned —
/// and the columnar segment path counts segment pages/rows under the
/// same fields, so totals also agree across storage formats.
class PageEvaluator {
 public:
  PageEvaluator(const Table& table, const Predicate& predicate,
                const SeqScanOptions& options, const RowCallback& callback)
      : predicate_(predicate),
        callback_(callback),
        record_bytes_(table.schema().RowBytes()),
        batch_(options.batch),
        skip_quarantined_(options.skip_quarantined),
        prune_(options.prune && !predicate.conditions().empty()),
        kernel_(ActiveScanKernel()),
        column_compare_(ActiveColumnCompare()),
        zone_map_(options.prune && !predicate.conditions().empty()
                      ? ResolveZoneMap(table, options)
                      : nullptr),
        ctx_(options.context) {}

  Status Evaluate(PageId page, const char* records, uint16_t count,
                  bool* keep_going) {
    *keep_going = true;
    // Page-granular cancellation point: the scan stops within one page
    // of a cancel, and the non-OK return unwinds the pin held by the
    // page-data walk. The deadline's clock read is amortized over
    // kDeadlineCheckPageInterval pages (first page included, so an
    // already-expired deadline fails before any work) — a relaxed
    // atomic load per page is all the always-on cost.
    if (ctx_ != nullptr) {
      if (ctx_->cancel.cancelled()) {
        return Status::Cancelled("query cancelled by caller");
      }
      if (++pages_since_deadline_check_ >= kDeadlineCheckPageInterval) {
        pages_since_deadline_check_ = 0;
        if (ctx_->deadline.expired()) {
          return Status::DeadlineExceeded("query deadline exceeded");
        }
      }
    }
    if (zone_map_ != nullptr) {
      const size_t zone = zone_map_->FindZone(page);
      // Prune only when the zone covers exactly the rows the page holds;
      // a mismatch (e.g. a crash persisted appends the checkpointed map
      // never saw) falls back to evaluating the whole page.
      if (zone != ZoneMap::kNoZone &&
          zone_map_->zone(zone).rows == count &&
          !ZoneCanMatch(*zone_map_, zone, predicate_.conditions())) {
        ++stats_.pages_pruned;
        stats_.rows_pruned += count;
        return Status::OK();
      }
    }
    ++stats_.pages_scanned;
    return batch_ ? EvaluateBatch(page, records, count)
                  : EvaluateRows(page, records, count);
  }

  /// Evaluates one compressed columnar segment. The segment's pages are
  /// always fetched — and checksum-verified — by opening the handle,
  /// before any prune decision, matching the heap path's "pruning saves
  /// the decode, not the IO" contract (and keeping corruption detection
  /// in force for pruned segments).
  Status EvaluateSegment(const ColumnStore& store, size_t seg_idx) {
    const ColumnSegmentInfo& info = store.meta().segments[seg_idx];
    if (ctx_ != nullptr) {
      if (ctx_->cancel.cancelled()) {
        return Status::Cancelled("query cancelled by caller");
      }
      pages_since_deadline_check_ += info.pages;
      if (pages_since_deadline_check_ >= kDeadlineCheckPageInterval) {
        pages_since_deadline_check_ = 0;
        if (ctx_->deadline.expired()) {
          return Status::DeadlineExceeded("query deadline exceeded");
        }
      }
    }
    Result<ColumnSegmentHandle> opened = store.OpenSegment(seg_idx);
    if (!opened.ok()) {
      if (skip_quarantined_ && opened.status().IsCorruption()) {
        // Opening verified (and quarantined) the segment's pages; the
        // whole segment is routed around and the result flagged partial.
        NoteQuarantined(info.pages, info.rows);
        return Status::OK();
      }
      return opened.status();
    }
    ColumnSegmentHandle handle = std::move(opened).value();
    if (prune_ && !SegmentCanMatch(info, predicate_.conditions())) {
      stats_.pages_pruned += info.pages;
      stats_.rows_pruned += info.rows;
      return Status::OK();
    }
    stats_.pages_scanned += info.pages;
    stats_.rows_scanned += info.rows;
    const size_t ncols = handle.num_columns();
    // Rows must be materialized when something consumes whole records
    // (callback or residual) or in the row-at-a-time ablation mode;
    // count-only scans decode just the predicate's columns.
    const bool need_rows =
        static_cast<bool>(callback_) || predicate_.residual() || !batch_;
    std::vector<size_t> wanted;
    if (need_rows) {
      for (size_t c = 0; c < ncols; ++c) {
        wanted.push_back(c);
      }
    } else {
      for (const ColumnCondition& cond : predicate_.conditions()) {
        if (std::find(wanted.begin(), wanted.end(), cond.column) ==
            wanted.end()) {
          wanted.push_back(cond.column);
        }
      }
    }
    SEGDIFF_ASSIGN_OR_RETURN(ColumnDecoder decoder,
                             ColumnDecoder::Create(&handle, wanted));
    if (row_buf_.size() < record_bytes_) {
      row_buf_.resize(record_bytes_);
    }
    size_t count;
    while ((count = decoder.NextBatch()) > 0) {
      SEGDIFF_RETURN_IF_ERROR(batch_
                                  ? SegmentBatch(decoder, info, ncols, count,
                                                 need_rows)
                                  : SegmentRows(decoder, info, ncols, count));
    }
    return Status::OK();
  }

  const ScanStats& stats() const { return stats_; }

  /// Records a routed-around corrupt range (the heap skipper and the
  /// segment path above both funnel here, so one stats object carries
  /// the partial-result evidence).
  void NoteQuarantined(uint64_t pages, uint64_t rows) {
    stats_.pages_quarantined += pages;
    stats_.rows_quarantined += rows;
  }

  /// The heap-page skipper for this scan, or nullptr when quarantine
  /// routing is off. Valid as long as the evaluator lives.
  const CorruptPageSkipper* heap_skipper() {
    if (!skip_quarantined_) {
      return nullptr;
    }
    if (!skipper_.on_skip) {
      skipper_.on_skip = [this](PageId page, uint64_t lost) {
        NoteQuarantined(page != kInvalidPageId ? 1 : 0, lost);
      };
    }
    return &skipper_;
  }

 private:
  /// Rebuilds the encoded record for batch row `i` from the decoded
  /// columns (bit-exact: the cursors reproduce the stored bit patterns).
  const char* MaterializeRow(const ColumnDecoder& decoder, size_t ncols,
                             size_t i) {
    for (size_t c = 0; c < ncols; ++c) {
      EncodeDouble(row_buf_.data() + 8 * c, decoder.column(c)[i]);
    }
    return row_buf_.data();
  }

  /// Vectorized evaluation of one decoded batch: selection bitmap over
  /// contiguous columns, then residual/emit only for surviving rows.
  /// Count-only scans (no callback, no residual) never materialize —
  /// just popcount the bitmap.
  Status SegmentBatch(const ColumnDecoder& decoder,
                      const ColumnSegmentInfo& info, size_t ncols,
                      size_t count, bool need_rows) {
    InitSelectionBitmap(count, bitmap_);
    for (const ColumnCondition& cond : predicate_.conditions()) {
      column_compare_(decoder.column(cond.column), count, cond.op, cond.value,
                      bitmap_);
    }
    if (!need_rows) {
      for (size_t w = 0; w * 64 < count; ++w) {
        stats_.rows_matched += static_cast<uint64_t>(std::popcount(bitmap_[w]));
      }
      return Status::OK();
    }
    const auto& residual = predicate_.residual();
    for (size_t w = 0; w * 64 < count; ++w) {
      uint64_t word = bitmap_[w];
      while (word != 0) {
        const size_t i = w * 64 + static_cast<size_t>(std::countr_zero(word));
        word &= word - 1;
        const char* record = MaterializeRow(decoder, ncols, i);
        if (!residual || residual(record)) {
          ++stats_.rows_matched;
          if (callback_) {
            const uint32_t row =
                static_cast<uint32_t>(decoder.batch_start() + i);
            SEGDIFF_RETURN_IF_ERROR(
                callback_(record, RecordId{info.first_page, row}));
          }
          SEGDIFF_RETURN_IF_ERROR(CheckBetweenEmits());
        }
      }
    }
    return Status::OK();
  }

  /// Row-at-a-time ablation path over a decoded batch.
  Status SegmentRows(const ColumnDecoder& decoder,
                     const ColumnSegmentInfo& info, size_t ncols,
                     size_t count) {
    for (size_t i = 0; i < count; ++i) {
      const char* record = MaterializeRow(decoder, ncols, i);
      if (predicate_.Matches(record)) {
        ++stats_.rows_matched;
        if (callback_) {
          const uint32_t row = static_cast<uint32_t>(decoder.batch_start() + i);
          SEGDIFF_RETURN_IF_ERROR(
              callback_(record, RecordId{info.first_page, row}));
        }
        SEGDIFF_RETURN_IF_ERROR(CheckBetweenEmits());
      }
    }
    return Status::OK();
  }
  Status EvaluateRows(PageId page, const char* records, uint16_t count) {
    for (uint16_t slot = 0; slot < count; ++slot) {
      const char* record = records + static_cast<size_t>(slot) * record_bytes_;
      ++stats_.rows_scanned;
      if (predicate_.Matches(record)) {
        ++stats_.rows_matched;
        if (callback_) {
          SEGDIFF_RETURN_IF_ERROR(callback_(record, RecordId{page, slot}));
        }
        SEGDIFF_RETURN_IF_ERROR(CheckBetweenEmits());
      }
    }
    return Status::OK();
  }

  Status EvaluateBatch(PageId page, const char* records, uint16_t count) {
    const std::vector<ColumnCondition>& conditions = predicate_.conditions();
    kernel_(records, record_bytes_, count, conditions.data(),
            conditions.size(), bitmap_);
    stats_.rows_scanned += count;
    const auto& residual = predicate_.residual();
    for (size_t w = 0; w * 64 < count; ++w) {
      uint64_t word = bitmap_[w];
      while (word != 0) {
        const size_t slot = w * 64 + static_cast<size_t>(std::countr_zero(word));
        word &= word - 1;
        const char* record = records + slot * record_bytes_;
        if (!residual || residual(record)) {
          ++stats_.rows_matched;
          if (callback_) {
            SEGDIFF_RETURN_IF_ERROR(callback_(
                record, RecordId{page, static_cast<uint16_t>(slot)}));
          }
          SEGDIFF_RETURN_IF_ERROR(CheckBetweenEmits());
        }
      }
    }
    return Status::OK();
  }

  /// Extra check points inside the residual/emit loop, for pages where
  /// the row callback itself is the expensive part (corner-query overlap
  /// tests): every kGovernanceCheckInterval emitted rows.
  Status CheckBetweenEmits() {
    if (ctx_ != nullptr && ++emits_since_check_ >= kGovernanceCheckInterval) {
      emits_since_check_ = 0;
      return ctx_->Check();
    }
    return Status::OK();
  }

  const Predicate& predicate_;
  const RowCallback& callback_;
  const size_t record_bytes_;
  const bool batch_;
  const bool skip_quarantined_;
  CorruptPageSkipper skipper_;  ///< lazily armed by heap_skipper()
  const bool prune_;
  const ScanKernelFn kernel_;
  const ColumnCompareFn column_compare_;
  const ZoneMap* zone_map_;
  const QueryContext* ctx_;
  uint64_t emits_since_check_ = 0;
  // Starts at the interval so page 0 performs a deadline check.
  uint64_t pages_since_deadline_check_ = kDeadlineCheckPageInterval - 1;
  ScanStats stats_;
  std::vector<char> row_buf_;  ///< columnar row materialization scratch
  uint64_t bitmap_[kBatchBitmapWords];
};

}  // namespace

Status SeqScan(const Table& table, const Predicate& predicate,
               const RowCallback& callback, ScanStats* stats,
               const SeqScanOptions& options) {
  PageEvaluator evaluator(table, predicate, options, callback);
  Status status = Status::OK();
  // Columnar segments hold the oldest rows; scanning them first keeps
  // the visit order identical to the row-format scan of the same data.
  const ColumnStore* columnar = table.columnar();
  if (columnar != nullptr) {
    for (size_t s = 0; s < columnar->segment_count() && status.ok(); ++s) {
      status = evaluator.EvaluateSegment(*columnar, s);
    }
  }
  if (status.ok()) {
    status = table.ScanPageData(
        [&](PageId page, const char* records, uint16_t count,
            bool* keep_going) -> Status {
          return evaluator.Evaluate(page, records, count, keep_going);
        },
        options.snapshot, evaluator.heap_skipper());
  }
  if (stats != nullptr) {
    stats->Add(evaluator.stats());
  }
  return status;
}

namespace {

/// One contiguous slice of a parallel scan: a run of columnar segments
/// followed by a run of heap pages (segments always precede the heap in
/// scan order, so every contiguous slice has this shape).
struct ScanPartition {
  size_t seg_begin = 0;
  size_t seg_end = 0;  ///< exclusive
  std::vector<PageId> pages;
  size_t heap_first = 0;  ///< heap index of pages[0] (tail-count math)
};

}  // namespace

Status ParallelSeqScan(const Table& table, const Predicate& predicate,
                       ThreadPool* pool, size_t num_partitions,
                       const PartitionSinkFactory& make_sink,
                       ScanStats* stats, const SeqScanOptions& options) {
  if (pool == nullptr || num_partitions <= 1) {
    // Degenerate case: one partition is just a serial scan.
    return SeqScan(table, predicate, make_sink(0), stats, options);
  }
  // Chain resolution happens once, up front; with quarantine routing a
  // broken chain's unreachable remainder is accounted here (no
  // partition would ever visit those pages).
  ScanStats collect_stats;
  CorruptPageSkipper collect_skipper;
  collect_skipper.on_skip = [&](PageId page, uint64_t lost) {
    collect_stats.pages_quarantined += page != kInvalidPageId ? 1 : 0;
    collect_stats.rows_quarantined += lost;
  };
  SEGDIFF_ASSIGN_OR_RETURN(
      std::vector<PageId> pages,
      table.HeapPageIds(options.snapshot,
                        options.skip_quarantined ? &collect_skipper : nullptr));
  const ColumnStore* columnar = table.columnar();
  const size_t num_segments =
      columnar != nullptr ? columnar->segment_count() : 0;

  // Weighted work units in scan order: each segment counts its page
  // span, each heap page counts 1, so partitions balance by IO volume
  // rather than unit count. Runs stay contiguous to keep each worker's
  // reads sequential.
  const size_t num_units = num_segments + pages.size();
  uint64_t total_weight = pages.size();
  for (size_t s = 0; s < num_segments; ++s) {
    total_weight += std::max<uint32_t>(columnar->meta().segments[s].pages, 1);
  }
  num_partitions = std::min(num_partitions, std::max<size_t>(num_units, 1));
  std::vector<ScanPartition> partitions(num_partitions);
  {
    size_t p = 0;
    uint64_t taken = 0;
    // Greedy prefix split: move to the next partition once this one's
    // cumulative weight reaches its proportional share. A single heavy
    // unit can skip partitions, leaving them (correctly) empty.
    auto advance = [&](uint64_t weight, size_t next_seg) {
      taken += weight;
      while (p + 1 < num_partitions &&
             taken * num_partitions >= (p + 1) * total_weight) {
        ++p;
        partitions[p].seg_begin = partitions[p].seg_end = next_seg;
      }
    };
    for (size_t s = 0; s < num_segments; ++s) {
      partitions[p].seg_end = s + 1;
      advance(std::max<uint32_t>(columnar->meta().segments[s].pages, 1),
              s + 1);
    }
    for (size_t i = 0; i < pages.size(); ++i) {
      if (partitions[p].pages.empty()) {
        partitions[p].heap_first = i;
      }
      partitions[p].pages.push_back(pages[i]);
      advance(1, num_segments);
    }
  }
  std::vector<RowCallback> sinks(num_partitions);
  for (size_t p = 0; p < num_partitions; ++p) {
    sinks[p] = make_sink(p);
  }
  std::vector<ScanStats> partition_stats(num_partitions);
  SEGDIFF_RETURN_IF_ERROR(pool->ParallelFor(
      num_partitions, options.context, [&](size_t p) -> Status {
        const ScanPartition& part = partitions[p];
        PageEvaluator evaluator(table, predicate, options, sinks[p]);
        Status status = Status::OK();
        for (size_t s = part.seg_begin; s < part.seg_end && status.ok();
             ++s) {
          status = evaluator.EvaluateSegment(*columnar, s);
        }
        if (status.ok()) {
          status = table.ScanPagesData(
              part.pages, part.heap_first,
              [&](PageId page, const char* records, uint16_t count,
                  bool* keep_going) -> Status {
                return evaluator.Evaluate(page, records, count, keep_going);
              },
              options.snapshot, evaluator.heap_skipper());
        }
        partition_stats[p] = evaluator.stats();
        return status;
      }));
  if (stats != nullptr) {
    stats->Add(collect_stats);
    for (const ScanStats& local : partition_stats) {
      stats->Add(local);
    }
  }
  return Status::OK();
}

Status IndexScan(const Table& table, const IndexScanSpec& spec,
                 const Predicate& residual, const RowCallback& callback,
                 ScanStats* stats) {
  if (spec.index == nullptr) {
    return Status::InvalidArgument("index scan without index");
  }
  ScanStats local;
  std::vector<char> record(table.schema().RowBytes());
  const PoolSnapshot* pool_snap =
      spec.snapshot != nullptr ? spec.snapshot->pool_snapshot() : nullptr;
  SEGDIFF_ASSIGN_OR_RETURN(BPlusTree::Iterator it,
                           spec.index->Seek(spec.lower, pool_snap));
  while (it.Valid()) {
    const IndexKey& key = it.key();
    ++local.index_entries_scanned;
    // Governance check amortised over the range walk; leaf pins are
    // RAII, so the early return releases the current leaf cleanly.
    if (spec.context != nullptr &&
        local.index_entries_scanned % kGovernanceCheckInterval == 1) {
      SEGDIFF_RETURN_IF_ERROR(spec.context->Check());
    }
    if (spec.key_continue && !spec.key_continue(key)) {
      break;
    }
    if (!spec.key_filter || spec.key_filter(key)) {
      ++local.heap_fetches;
      Status fetched = table.ReadRecord(RecordId::Unpack(key.rid),
                                        record.data(), spec.snapshot);
      if (!fetched.ok()) {
        if (spec.skip_quarantined && fetched.IsCorruption()) {
          // Candidate's page is quarantined: drop the row, flag partial.
          ++local.rows_quarantined;
          SEGDIFF_RETURN_IF_ERROR(it.Next());
          continue;
        }
        return fetched;
      }
      if (residual.Matches(record.data())) {
        ++local.rows_matched;
        SEGDIFF_RETURN_IF_ERROR(
            callback(record.data(), RecordId::Unpack(key.rid)));
      }
    }
    SEGDIFF_RETURN_IF_ERROR(it.Next());
  }
  if (stats != nullptr) {
    stats->Add(local);
  }
  return Status::OK();
}

}  // namespace segdiff
