#include "query/executor.h"

#include <algorithm>
#include <cstddef>
#include <vector>

namespace segdiff {

Status SeqScan(const Table& table, const Predicate& predicate,
               const RowCallback& callback, ScanStats* stats) {
  ScanStats local;
  Status status = table.Scan(
      [&](const char* record, RecordId id, bool* keep_going) -> Status {
        *keep_going = true;
        ++local.rows_scanned;
        if (predicate.Matches(record)) {
          ++local.rows_matched;
          return callback(record, id);
        }
        return Status::OK();
      });
  if (stats != nullptr) {
    stats->Add(local);
  }
  return status;
}

Status ParallelSeqScan(const Table& table, const Predicate& predicate,
                       ThreadPool* pool, size_t num_partitions,
                       const PartitionSinkFactory& make_sink,
                       ScanStats* stats) {
  if (pool == nullptr || num_partitions <= 1) {
    // Degenerate case: one partition is just a serial scan.
    return SeqScan(table, predicate, make_sink(0), stats);
  }
  SEGDIFF_ASSIGN_OR_RETURN(std::vector<PageId> pages, table.HeapPageIds());
  num_partitions = std::min(num_partitions, std::max<size_t>(pages.size(), 1));
  // Contiguous page runs keep each worker's reads sequential.
  std::vector<std::vector<PageId>> partitions(num_partitions);
  const size_t base = pages.size() / num_partitions;
  const size_t extra = pages.size() % num_partitions;
  size_t next = 0;
  for (size_t p = 0; p < num_partitions; ++p) {
    const size_t take = base + (p < extra ? 1 : 0);
    partitions[p].assign(pages.begin() + static_cast<ptrdiff_t>(next),
                         pages.begin() + static_cast<ptrdiff_t>(next + take));
    next += take;
  }
  std::vector<RowCallback> sinks(num_partitions);
  for (size_t p = 0; p < num_partitions; ++p) {
    sinks[p] = make_sink(p);
  }
  std::vector<ScanStats> partition_stats(num_partitions);
  SEGDIFF_RETURN_IF_ERROR(pool->ParallelFor(
      num_partitions, [&](size_t p) -> Status {
        ScanStats& local = partition_stats[p];
        const RowCallback& sink = sinks[p];
        return table.ScanPages(
            partitions[p],
            [&](const char* record, RecordId id, bool* keep_going) -> Status {
              *keep_going = true;
              ++local.rows_scanned;
              if (predicate.Matches(record)) {
                ++local.rows_matched;
                return sink(record, id);
              }
              return Status::OK();
            });
      }));
  if (stats != nullptr) {
    for (const ScanStats& local : partition_stats) {
      stats->Add(local);
    }
  }
  return Status::OK();
}

Status IndexScan(const Table& table, const IndexScanSpec& spec,
                 const Predicate& residual, const RowCallback& callback,
                 ScanStats* stats) {
  if (spec.index == nullptr) {
    return Status::InvalidArgument("index scan without index");
  }
  ScanStats local;
  std::vector<char> record(table.schema().RowBytes());
  SEGDIFF_ASSIGN_OR_RETURN(BPlusTree::Iterator it, spec.index->Seek(spec.lower));
  while (it.Valid()) {
    const IndexKey& key = it.key();
    ++local.index_entries_scanned;
    if (spec.key_continue && !spec.key_continue(key)) {
      break;
    }
    if (!spec.key_filter || spec.key_filter(key)) {
      ++local.heap_fetches;
      SEGDIFF_RETURN_IF_ERROR(
          table.ReadRecord(RecordId::Unpack(key.rid), record.data()));
      if (residual.Matches(record.data())) {
        ++local.rows_matched;
        SEGDIFF_RETURN_IF_ERROR(
            callback(record.data(), RecordId::Unpack(key.rid)));
      }
    }
    SEGDIFF_RETURN_IF_ERROR(it.Next());
  }
  if (stats != nullptr) {
    stats->Add(local);
  }
  return Status::OK();
}

}  // namespace segdiff
