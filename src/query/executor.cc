#include "query/executor.h"

#include <algorithm>
#include <bit>
#include <cstddef>
#include <vector>

#include "query/scan_kernel.h"

namespace segdiff {
namespace {

/// Per-scan (per-partition, under ParallelSeqScan) page evaluator.
/// Both modes walk identical pages and count identically, so serial,
/// parallel, batched, and row-at-a-time scans all agree on
/// rows_scanned + rows_pruned and pages_scanned + pages_pruned.
class PageEvaluator {
 public:
  PageEvaluator(const Table& table, const Predicate& predicate,
                const SeqScanOptions& options, const RowCallback& callback)
      : predicate_(predicate),
        callback_(callback),
        record_bytes_(table.schema().RowBytes()),
        batch_(options.batch),
        kernel_(ActiveScanKernel()),
        zone_map_(options.prune && !predicate.conditions().empty()
                      ? table.zone_map()
                      : nullptr),
        ctx_(options.context) {}

  Status Evaluate(PageId page, const char* records, uint16_t count,
                  bool* keep_going) {
    *keep_going = true;
    // Page-granular cancellation point: the scan stops within one page
    // of a cancel, and the non-OK return unwinds the pin held by the
    // page-data walk. The deadline's clock read is amortized over
    // kDeadlineCheckPageInterval pages (first page included, so an
    // already-expired deadline fails before any work) — a relaxed
    // atomic load per page is all the always-on cost.
    if (ctx_ != nullptr) {
      if (ctx_->cancel.cancelled()) {
        return Status::Cancelled("query cancelled by caller");
      }
      if (++pages_since_deadline_check_ >= kDeadlineCheckPageInterval) {
        pages_since_deadline_check_ = 0;
        if (ctx_->deadline.expired()) {
          return Status::DeadlineExceeded("query deadline exceeded");
        }
      }
    }
    if (zone_map_ != nullptr) {
      const size_t zone = zone_map_->FindZone(page);
      // Prune only when the zone covers exactly the rows the page holds;
      // a mismatch (e.g. a crash persisted appends the checkpointed map
      // never saw) falls back to evaluating the whole page.
      if (zone != ZoneMap::kNoZone &&
          zone_map_->zone(zone).rows == count &&
          !ZoneCanMatch(*zone_map_, zone, predicate_.conditions())) {
        ++stats_.pages_pruned;
        stats_.rows_pruned += count;
        return Status::OK();
      }
    }
    ++stats_.pages_scanned;
    return batch_ ? EvaluateBatch(page, records, count)
                  : EvaluateRows(page, records, count);
  }

  const ScanStats& stats() const { return stats_; }

 private:
  Status EvaluateRows(PageId page, const char* records, uint16_t count) {
    for (uint16_t slot = 0; slot < count; ++slot) {
      const char* record = records + static_cast<size_t>(slot) * record_bytes_;
      ++stats_.rows_scanned;
      if (predicate_.Matches(record)) {
        ++stats_.rows_matched;
        SEGDIFF_RETURN_IF_ERROR(callback_(record, RecordId{page, slot}));
        SEGDIFF_RETURN_IF_ERROR(CheckBetweenEmits());
      }
    }
    return Status::OK();
  }

  Status EvaluateBatch(PageId page, const char* records, uint16_t count) {
    const std::vector<ColumnCondition>& conditions = predicate_.conditions();
    kernel_(records, record_bytes_, count, conditions.data(),
            conditions.size(), bitmap_);
    stats_.rows_scanned += count;
    const auto& residual = predicate_.residual();
    for (size_t w = 0; w * 64 < count; ++w) {
      uint64_t word = bitmap_[w];
      while (word != 0) {
        const size_t slot = w * 64 + static_cast<size_t>(std::countr_zero(word));
        word &= word - 1;
        const char* record = records + slot * record_bytes_;
        if (!residual || residual(record)) {
          ++stats_.rows_matched;
          SEGDIFF_RETURN_IF_ERROR(
              callback_(record, RecordId{page, static_cast<uint16_t>(slot)}));
          SEGDIFF_RETURN_IF_ERROR(CheckBetweenEmits());
        }
      }
    }
    return Status::OK();
  }

  /// Extra check points inside the residual/emit loop, for pages where
  /// the row callback itself is the expensive part (corner-query overlap
  /// tests): every kGovernanceCheckInterval emitted rows.
  Status CheckBetweenEmits() {
    if (ctx_ != nullptr && ++emits_since_check_ >= kGovernanceCheckInterval) {
      emits_since_check_ = 0;
      return ctx_->Check();
    }
    return Status::OK();
  }

  const Predicate& predicate_;
  const RowCallback& callback_;
  const size_t record_bytes_;
  const bool batch_;
  const ScanKernelFn kernel_;
  const ZoneMap* zone_map_;
  const QueryContext* ctx_;
  uint64_t emits_since_check_ = 0;
  // Starts at the interval so page 0 performs a deadline check.
  uint64_t pages_since_deadline_check_ = kDeadlineCheckPageInterval - 1;
  ScanStats stats_;
  uint64_t bitmap_[kBatchBitmapWords];
};

}  // namespace

Status SeqScan(const Table& table, const Predicate& predicate,
               const RowCallback& callback, ScanStats* stats,
               const SeqScanOptions& options) {
  PageEvaluator evaluator(table, predicate, options, callback);
  Status status = table.ScanPageData(
      [&](PageId page, const char* records, uint16_t count,
          bool* keep_going) -> Status {
        return evaluator.Evaluate(page, records, count, keep_going);
      });
  if (stats != nullptr) {
    stats->Add(evaluator.stats());
  }
  return status;
}

Status ParallelSeqScan(const Table& table, const Predicate& predicate,
                       ThreadPool* pool, size_t num_partitions,
                       const PartitionSinkFactory& make_sink,
                       ScanStats* stats, const SeqScanOptions& options) {
  if (pool == nullptr || num_partitions <= 1) {
    // Degenerate case: one partition is just a serial scan.
    return SeqScan(table, predicate, make_sink(0), stats, options);
  }
  SEGDIFF_ASSIGN_OR_RETURN(std::vector<PageId> pages, table.HeapPageIds());
  num_partitions = std::min(num_partitions, std::max<size_t>(pages.size(), 1));
  // Contiguous page runs keep each worker's reads sequential.
  std::vector<std::vector<PageId>> partitions(num_partitions);
  const size_t base = pages.size() / num_partitions;
  const size_t extra = pages.size() % num_partitions;
  size_t next = 0;
  for (size_t p = 0; p < num_partitions; ++p) {
    const size_t take = base + (p < extra ? 1 : 0);
    partitions[p].assign(pages.begin() + static_cast<ptrdiff_t>(next),
                         pages.begin() + static_cast<ptrdiff_t>(next + take));
    next += take;
  }
  std::vector<RowCallback> sinks(num_partitions);
  for (size_t p = 0; p < num_partitions; ++p) {
    sinks[p] = make_sink(p);
  }
  std::vector<ScanStats> partition_stats(num_partitions);
  SEGDIFF_RETURN_IF_ERROR(pool->ParallelFor(
      num_partitions, options.context, [&](size_t p) -> Status {
        PageEvaluator evaluator(table, predicate, options, sinks[p]);
        Status status = table.ScanPagesData(
            partitions[p],
            [&](PageId page, const char* records, uint16_t count,
                bool* keep_going) -> Status {
              return evaluator.Evaluate(page, records, count, keep_going);
            });
        partition_stats[p] = evaluator.stats();
        return status;
      }));
  if (stats != nullptr) {
    for (const ScanStats& local : partition_stats) {
      stats->Add(local);
    }
  }
  return Status::OK();
}

Status IndexScan(const Table& table, const IndexScanSpec& spec,
                 const Predicate& residual, const RowCallback& callback,
                 ScanStats* stats) {
  if (spec.index == nullptr) {
    return Status::InvalidArgument("index scan without index");
  }
  ScanStats local;
  std::vector<char> record(table.schema().RowBytes());
  SEGDIFF_ASSIGN_OR_RETURN(BPlusTree::Iterator it, spec.index->Seek(spec.lower));
  while (it.Valid()) {
    const IndexKey& key = it.key();
    ++local.index_entries_scanned;
    // Governance check amortised over the range walk; leaf pins are
    // RAII, so the early return releases the current leaf cleanly.
    if (spec.context != nullptr &&
        local.index_entries_scanned % kGovernanceCheckInterval == 1) {
      SEGDIFF_RETURN_IF_ERROR(spec.context->Check());
    }
    if (spec.key_continue && !spec.key_continue(key)) {
      break;
    }
    if (!spec.key_filter || spec.key_filter(key)) {
      ++local.heap_fetches;
      SEGDIFF_RETURN_IF_ERROR(
          table.ReadRecord(RecordId::Unpack(key.rid), record.data()));
      if (residual.Matches(record.data())) {
        ++local.rows_matched;
        SEGDIFF_RETURN_IF_ERROR(
            callback(record.data(), RecordId::Unpack(key.rid)));
      }
    }
    SEGDIFF_RETURN_IF_ERROR(it.Next());
  }
  if (stats != nullptr) {
    stats->Add(local);
  }
  return Status::OK();
}

}  // namespace segdiff
