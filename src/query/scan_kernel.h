// Batched predicate kernels and zone-map pruning tests.
//
// The batched sequential scan evaluates one heap page at a time: each
// ColumnCondition is applied to the page's column values with a
// branch-free compare loop that ANDs a selection bitmap, and only rows
// whose bit survives reach the residual std::function / row callback.
// Three kernel variants share one signature — a portable scalar loop
// (auto-vectorizable), an SSE2 loop (x86-64 baseline), and an AVX2 loop
// compiled with a target attribute and selected at runtime via CPU
// detection, following the crc32c hardware/software dispatch pattern.
//
// Semantics match EvalCondition exactly: all comparisons are ordered,
// so a NaN cell never matches.

#ifndef SEGDIFF_QUERY_SCAN_KERNEL_H_
#define SEGDIFF_QUERY_SCAN_KERNEL_H_

#include <cstddef>
#include <cstdint>

#include "query/predicate.h"
#include "storage/heap_file.h"
#include "storage/page.h"
#include "storage/zone_map.h"

namespace segdiff {

/// Most records one heap page can hold (the 1-column case); batch
/// buffers are sized for it so any page fits one batch.
inline constexpr size_t kMaxBatchRows =
    (kPageCapacity - HeapFile::kHeaderBytes) / 8;
inline constexpr size_t kBatchBitmapWords = (kMaxBatchRows + 63) / 64;

/// Fills `bitmap` (ceil(count/64) words; bit i = record i matches every
/// condition) for `count` fixed-width records starting at `records`.
/// Bits at and above `count` are zero. `count` must not exceed
/// kMaxBatchRows and every condition's column must lie within the
/// record.
using ScanKernelFn = void (*)(const char* records, size_t record_bytes,
                              size_t count, const ColumnCondition* conditions,
                              size_t num_conditions, uint64_t* bitmap);

/// The kernel chosen for this process: the widest variant the CPU
/// supports, overridable with SEGDIFF_SCAN_KERNEL=scalar|sse2|avx2
/// (unsupported requests fall back to the widest supported variant).
ScanKernelFn ActiveScanKernel();

/// Name of the variant ActiveScanKernel() returns ("scalar", "sse2",
/// "avx2") — for --stats output and bench reports.
const char* ActiveScanKernelName();

/// The individual variants, exposed for differential tests. Sse2/Avx2
/// are null function pointers off x86-64 (and Avx2 may be unusable even
/// where non-null; callers outside tests should use ActiveScanKernel).
ScanKernelFn ScalarScanKernel();
ScanKernelFn Sse2ScanKernel();
ScanKernelFn Avx2ScanKernel();

/// True when some value inside zone `zone_idx` could satisfy every
/// condition. Sound with NaN-bearing pages: zone bounds exclude NaN
/// cells, and a NaN cell never matches a condition, so bounds over the
/// non-NaN values are sufficient evidence to prune. A bound that is
/// itself NaN (polluted stats) disables pruning on that column.
bool ZoneCanMatch(const ZoneMap& zone_map, size_t zone_idx,
                  const std::vector<ColumnCondition>& conditions);

/// Page-level selectivity survey: how much of the table survives
/// pruning under `conditions`. Feeds the planner's cost model.
struct ZoneSurvey {
  uint64_t zones_total = 0;
  uint64_t zones_surviving = 0;
  uint64_t rows_total = 0;
  uint64_t rows_surviving = 0;
};
ZoneSurvey SurveyZones(const ZoneMap& zone_map,
                       const std::vector<ColumnCondition>& conditions);

}  // namespace segdiff

#endif  // SEGDIFF_QUERY_SCAN_KERNEL_H_
