// Batched predicate kernels and zone-map pruning tests.
//
// The batched sequential scan evaluates one heap page at a time: each
// ColumnCondition is applied to the page's column values with a
// branch-free compare loop that ANDs a selection bitmap, and only rows
// whose bit survives reach the residual std::function / row callback.
// Three kernel variants share one signature — a portable scalar loop
// (auto-vectorizable), an SSE2 loop (x86-64 baseline), and an AVX2 loop
// compiled with a target attribute and selected at runtime via CPU
// detection, following the crc32c hardware/software dispatch pattern.
//
// Semantics match EvalCondition exactly: all comparisons are ordered,
// so a NaN cell never matches.

#ifndef SEGDIFF_QUERY_SCAN_KERNEL_H_
#define SEGDIFF_QUERY_SCAN_KERNEL_H_

#include <cstddef>
#include <cstdint>

#include "common/result.h"
#include "query/predicate.h"
#include "storage/column_page.h"
#include "storage/heap_file.h"
#include "storage/page.h"
#include "storage/zone_map.h"

namespace segdiff {

/// Most records one heap page can hold (the 1-column case); batch
/// buffers are sized for it so any page fits one batch.
inline constexpr size_t kMaxBatchRows =
    (kPageCapacity - HeapFile::kHeaderBytes) / 8;
inline constexpr size_t kBatchBitmapWords = (kMaxBatchRows + 63) / 64;

/// Fills `bitmap` (ceil(count/64) words; bit i = record i matches every
/// condition) for `count` fixed-width records starting at `records`.
/// Bits at and above `count` are zero. `count` must not exceed
/// kMaxBatchRows and every condition's column must lie within the
/// record.
using ScanKernelFn = void (*)(const char* records, size_t record_bytes,
                              size_t count, const ColumnCondition* conditions,
                              size_t num_conditions, uint64_t* bitmap);

/// The kernel chosen for this process: the widest variant the CPU
/// supports, overridable with SEGDIFF_SCAN_KERNEL=scalar|sse2|avx2
/// (unsupported requests fall back to the widest supported variant).
ScanKernelFn ActiveScanKernel();

/// Name of the variant ActiveScanKernel() returns ("scalar", "sse2",
/// "avx2") — for --stats output and bench reports.
const char* ActiveScanKernelName();

/// The individual variants, exposed for differential tests. Sse2/Avx2
/// are null function pointers off x86-64 (and Avx2 may be unusable even
/// where non-null; callers outside tests should use ActiveScanKernel).
ScanKernelFn ScalarScanKernel();
ScanKernelFn Sse2ScanKernel();
ScanKernelFn Avx2ScanKernel();

/// True when some value inside zone `zone_idx` could satisfy every
/// condition. Sound with NaN-bearing pages: zone bounds exclude NaN
/// cells, and a NaN cell never matches a condition, so bounds over the
/// non-NaN values are sufficient evidence to prune. A bound that is
/// itself NaN (polluted stats) disables pruning on that column.
bool ZoneCanMatch(const ZoneMap& zone_map, size_t zone_idx,
                  const std::vector<ColumnCondition>& conditions);

/// Page-level selectivity survey: how much of the table survives
/// pruning under `conditions`. Feeds the planner's cost model.
struct ZoneSurvey {
  uint64_t zones_total = 0;
  uint64_t zones_surviving = 0;
  uint64_t rows_total = 0;
  uint64_t rows_surviving = 0;
};
ZoneSurvey SurveyZones(const ZoneMap& zone_map,
                       const std::vector<ColumnCondition>& conditions);

// ---------------------------------------------------------------------
// Columnar scan path: decode one column batch at a time and run the
// same selection-bitmap comparisons over the contiguous values.

/// Rows per decode batch. A multiple of 64 (whole bitmap words) that
/// fits the kBatchBitmapWords bitmap buffers the evaluators already
/// carry, and divides ColumnStore::kMaxSegmentRows so only a segment's
/// final batch is short.
inline constexpr size_t kColumnBatchRows = 1024;
static_assert(kColumnBatchRows % 64 == 0);
static_assert(kColumnBatchRows / 64 <= kBatchBitmapWords);
static_assert(ColumnStore::kMaxSegmentRows % kColumnBatchRows == 0);

/// Sets the low `count` bits of `bitmap` (ceil(count/64) words); bits at
/// and above `count` stay zero so callers can walk whole words.
void InitSelectionBitmap(size_t count, uint64_t* bitmap);

/// ANDs `bitmap` with `vals[i] op bound` over a contiguous column batch
/// — the columnar counterpart of ScanKernelFn, minus the gather (the
/// decoder already materialized the column). Comparisons are ordered:
/// NaN never matches.
using ColumnCompareFn = void (*)(const double* vals, size_t count, CmpOp op,
                                 double bound, uint64_t* bitmap);

/// Widest supported variant, honouring the same SEGDIFF_SCAN_KERNEL
/// override as ActiveScanKernel().
ColumnCompareFn ActiveColumnCompare();

/// The individual variants, exposed for differential tests (null off
/// x86-64 / without AVX2, like their ScanKernelFn counterparts).
ColumnCompareFn ScalarColumnCompare();
ColumnCompareFn Sse2ColumnCompare();
ColumnCompareFn Avx2ColumnCompare();

/// Segment-level pruning test over the directory's zone statistics —
/// the columnar counterpart of ZoneCanMatch, with identical NaN rules.
/// Pruned segments must still have their pages fetched (and therefore
/// checksum-verified); opening the segment handle does exactly that.
bool SegmentCanMatch(const ColumnSegmentInfo& info,
                     const std::vector<ColumnCondition>& conditions);

/// Selectivity survey over a table's columnar segments, from catalog
/// statistics alone (no IO). zones = segments; rows/pages feed the same
/// cost model as SurveyZones.
struct ColumnarSurvey {
  uint64_t segments_total = 0;
  uint64_t segments_surviving = 0;
  uint64_t rows_total = 0;
  uint64_t rows_surviving = 0;
  uint64_t pages_total = 0;
  uint64_t pages_surviving = 0;
};
ColumnarSurvey SurveyColumnarSegments(
    const ColumnStore& store, const std::vector<ColumnCondition>& conditions);

/// Global [min, max] (plus NaN flag) of column `column` over a columnar
/// store's segment statistics — the segment-directory counterpart of
/// ZoneMap::GlobalRange, for planner selectivity estimates on
/// dual-format tables. lo > hi when no non-NaN value was recorded.
ZoneMap::ColumnRange ColumnarGlobalRange(const ColumnStore& store,
                                         size_t column);

/// Streams one columnar segment in kColumnBatchRows batches, decoding
/// only the requested columns into 64-byte-aligned buffers that feed
/// ColumnCompareFn (and, for materialization, row reconstruction).
class ColumnDecoder {
 public:
  /// `handle` must outlive the decoder. `columns` are table column
  /// indices; payloads for exactly these columns are assembled.
  static Result<ColumnDecoder> Create(ColumnSegmentHandle* handle,
                                      const std::vector<size_t>& columns);

  /// Decodes the next batch of every requested column; returns the batch
  /// row count, 0 when the segment is exhausted.
  size_t NextBatch();

  /// Row index (within the segment) of the current batch's first row.
  size_t batch_start() const { return batch_start_; }

  /// The current batch of table column `col` (64-byte aligned). `col`
  /// must be one of the requested columns.
  const double* column(size_t col) const {
    return buffers_[slot_of_[col]].vals;
  }

 private:
  struct alignas(64) Batch {
    double vals[kColumnBatchRows];
  };

  ColumnDecoder() = default;

  ColumnSegmentHandle* handle_ = nullptr;
  std::vector<size_t> columns_;
  std::vector<ColumnCursor> cursors_;
  std::vector<Batch> buffers_;
  uint8_t slot_of_[ZoneMap::kMaxColumns] = {};
  size_t next_row_ = 0;
  size_t batch_start_ = 0;
};

}  // namespace segdiff

#endif  // SEGDIFF_QUERY_SCAN_KERNEL_H_
