// AVX2 variant of the batched predicate kernel. This translation unit
// alone is compiled with -mavx2 when the compiler supports it (mirroring
// the crc32c SSE4.2 arrangement); scan_kernel.cc only takes the function
// pointer after checking __builtin_cpu_supports("avx2") at runtime, so
// no AVX2 instruction executes on CPUs without it. Without -mavx2 this
// file compiles to a null factory and dispatch falls back to SSE2.

#include "query/scan_kernel.h"

#if defined(__AVX2__)

#include <immintrin.h>

#include <algorithm>

namespace segdiff {
namespace {

// Four doubles per compare; _CMP_*_OQ predicates are ordered and quiet,
// so NaN compares false, matching EvalCondition.
template <CmpOp Op>
__m256d Cmp256(__m256d a, __m256d b) {
  if constexpr (Op == CmpOp::kLt) {
    return _mm256_cmp_pd(a, b, _CMP_LT_OQ);
  } else if constexpr (Op == CmpOp::kLe) {
    return _mm256_cmp_pd(a, b, _CMP_LE_OQ);
  } else if constexpr (Op == CmpOp::kGt) {
    return _mm256_cmp_pd(a, b, _CMP_GT_OQ);
  } else if constexpr (Op == CmpOp::kGe) {
    return _mm256_cmp_pd(a, b, _CMP_GE_OQ);
  } else {
    return _mm256_cmp_pd(a, b, _CMP_EQ_OQ);
  }
}

template <CmpOp Op>
bool CmpScalar(double v, double bound) {
  if constexpr (Op == CmpOp::kLt) {
    return v < bound;
  } else if constexpr (Op == CmpOp::kLe) {
    return v <= bound;
  } else if constexpr (Op == CmpOp::kGt) {
    return v > bound;
  } else if constexpr (Op == CmpOp::kGe) {
    return v >= bound;
  } else {
    return v == bound;
  }
}

template <CmpOp Op>
void AndCompareAvx2(const double* vals, size_t count, double bound,
                    uint64_t* bitmap) {
  const __m256d vb = _mm256_set1_pd(bound);
  for (size_t w = 0; w * 64 < count; ++w) {
    const size_t base = w * 64;
    const size_t limit = std::min<size_t>(64, count - base);
    uint64_t m = 0;
    size_t b = 0;
    for (; b + 4 <= limit; b += 4) {
      const __m256d va = _mm256_loadu_pd(vals + base + b);
      m |= static_cast<uint64_t>(_mm256_movemask_pd(Cmp256<Op>(va, vb))) << b;
    }
    for (; b < limit; ++b) {
      m |= static_cast<uint64_t>(CmpScalar<Op>(vals[base + b], bound)) << b;
    }
    bitmap[w] &= m;
  }
}

void KernelAvx2(const char* records, size_t record_bytes, size_t count,
                const ColumnCondition* conditions, size_t num_conditions,
                uint64_t* bitmap) {
  const size_t words = (count + 63) / 64;
  for (size_t w = 0; w < words; ++w) {
    bitmap[w] = ~uint64_t{0};
  }
  if (count % 64 != 0) {
    bitmap[words - 1] = ~uint64_t{0} >> (64 - count % 64);
  }
  if (count == 0 || num_conditions == 0) {
    return;
  }
  double vals[kMaxBatchRows];
  for (size_t c = 0; c < num_conditions; ++c) {
    const ColumnCondition& cond = conditions[c];
    const char* cell = records + 8 * cond.column;
    for (size_t i = 0; i < count; ++i) {
      vals[i] = DecodeDoubleColumn(cell, 0);
      cell += record_bytes;
    }
    switch (cond.op) {
      case CmpOp::kLt:
        AndCompareAvx2<CmpOp::kLt>(vals, count, cond.value, bitmap);
        break;
      case CmpOp::kLe:
        AndCompareAvx2<CmpOp::kLe>(vals, count, cond.value, bitmap);
        break;
      case CmpOp::kGt:
        AndCompareAvx2<CmpOp::kGt>(vals, count, cond.value, bitmap);
        break;
      case CmpOp::kGe:
        AndCompareAvx2<CmpOp::kGe>(vals, count, cond.value, bitmap);
        break;
      case CmpOp::kEq:
        AndCompareAvx2<CmpOp::kEq>(vals, count, cond.value, bitmap);
        break;
    }
  }
}

void ColumnCompareAvx2(const double* vals, size_t count, CmpOp op,
                       double bound, uint64_t* bitmap) {
  switch (op) {
    case CmpOp::kLt:
      AndCompareAvx2<CmpOp::kLt>(vals, count, bound, bitmap);
      break;
    case CmpOp::kLe:
      AndCompareAvx2<CmpOp::kLe>(vals, count, bound, bitmap);
      break;
    case CmpOp::kGt:
      AndCompareAvx2<CmpOp::kGt>(vals, count, bound, bitmap);
      break;
    case CmpOp::kGe:
      AndCompareAvx2<CmpOp::kGe>(vals, count, bound, bitmap);
      break;
    case CmpOp::kEq:
      AndCompareAvx2<CmpOp::kEq>(vals, count, bound, bitmap);
      break;
  }
}

}  // namespace

ScanKernelFn Avx2ScanKernel() { return &KernelAvx2; }

ColumnCompareFn Avx2ColumnCompare() { return &ColumnCompareAvx2; }

}  // namespace segdiff

#else  // !defined(__AVX2__)

namespace segdiff {

ScanKernelFn Avx2ScanKernel() { return nullptr; }

ColumnCompareFn Avx2ColumnCompare() { return nullptr; }

}  // namespace segdiff

#endif
