// Minimal access-path planner.
//
// The paper evaluates sequential scan and index access separately and
// observes the crossover: index access loses once a query matches a
// large fraction of rows (random heap fetches dominate). The planner
// encodes that rule of thumb: pick the index only when the estimated
// selectivity of the leading index column range is below a threshold.

#ifndef SEGDIFF_QUERY_PLANNER_H_
#define SEGDIFF_QUERY_PLANNER_H_

#include <cstdint>

namespace segdiff {

enum class AccessPath : unsigned char { kSeqScan, kIndexScan };

struct PlanChoice {
  AccessPath path = AccessPath::kSeqScan;
  double estimated_selectivity = 1.0;
};

struct PlannerOptions {
  /// Use the index when the estimated fraction of scanned index entries
  /// is below this. ~10% mirrors the classical secondary-index rule.
  double index_selectivity_threshold = 0.10;
};

/// `leading_lo`/`leading_hi`: observed min/max of the leading index
/// column; `query_hi`: the query's upper bound on that column (range
/// [leading_lo, query_hi]). Index must exist for kIndexScan to be chosen.
/// Malformed statistics (inverted range, NaN anywhere) fall back to a
/// sequential scan; a zero-width range (single distinct value) is legal
/// and treated as all-or-nothing.
PlanChoice ChooseAccessPath(uint64_t row_count, double leading_lo,
                            double leading_hi, double query_hi,
                            bool index_available,
                            const PlannerOptions& options = {});

}  // namespace segdiff

#endif  // SEGDIFF_QUERY_PLANNER_H_
