// Minimal access-path planner.
//
// The paper evaluates sequential scan and index access separately and
// observes the crossover: index access loses once a query matches a
// large fraction of rows (random heap fetches dominate). The planner
// encodes that rule of thumb: pick the index only when the estimated
// selectivity of the leading index column range is below a threshold.

#ifndef SEGDIFF_QUERY_PLANNER_H_
#define SEGDIFF_QUERY_PLANNER_H_

#include <cstdint>

namespace segdiff {

enum class AccessPath : unsigned char { kSeqScan, kIndexScan };

struct PlanChoice {
  AccessPath path = AccessPath::kSeqScan;
  double estimated_selectivity = 1.0;
};

struct PlannerOptions {
  /// Use the index when the estimated fraction of scanned index entries
  /// is below this. ~10% mirrors the classical secondary-index rule.
  double index_selectivity_threshold = 0.10;

  /// Cost-model constants for the zone-map-aware overload, in relative
  /// units where reading one heap page sequentially costs 1. Index
  /// entries are cheap (cache-dense leaf walks); each candidate heap
  /// fetch is a random page read, the classical reason secondary-index
  /// access loses on dense queries (paper Figures 10-11).
  double seq_page_cost = 1.0;
  double index_entry_cost = 0.001;
  double random_fetch_cost = 4.0;
};

/// `leading_lo`/`leading_hi`: observed min/max of the leading index
/// column; `query_hi`: the query's upper bound on that column (range
/// [leading_lo, query_hi]). Index must exist for kIndexScan to be chosen.
/// Malformed statistics (inverted range, NaN anywhere) fall back to a
/// sequential scan; a zero-width range (single distinct value) is legal
/// and treated as all-or-nothing.
PlanChoice ChooseAccessPath(uint64_t row_count, double leading_lo,
                            double leading_hi, double query_hi,
                            bool index_available,
                            const PlannerOptions& options = {});

/// Zone-map-derived statistics for the cost-based overload. The page
/// counts come from a per-query zone survey (SurveyZones), so the
/// sequential side is priced at what the pruned scan will actually
/// read; the fractions estimate the index side from real per-column
/// ranges instead of a single leading-column guess.
struct TableStatsView {
  uint64_t row_count = 0;
  uint64_t pages_total = 0;
  /// Pages whose zone ranges intersect the query (<= pages_total).
  uint64_t pages_after_pruning = 0;
  /// Estimated fraction of index entries the range walk visits
  /// (selectivity of the leading key column's bound).
  double index_entry_fraction = 1.0;
  /// Estimated fraction of rows surviving every key-column bound — each
  /// one costs a random heap fetch on the index path.
  double heap_fetch_fraction = 1.0;
  /// Multiplier on random_fetch_cost for this table's row mix. A random
  /// fetch into a compressed columnar segment decodes a whole segment
  /// (amortized by the store's one-segment cache, but still far pricier
  /// than a heap page read); callers set this to the row-weighted mean
  /// of 1.0 (heap rows) and kColumnarFetchCostScale (columnar rows).
  double random_fetch_cost_scale = 1.0;
};

/// Relative cost of one random fetch that lands in a columnar segment
/// versus one that lands in a row-format heap page.
inline constexpr double kColumnarFetchCostScale = 4.0;

/// Cost-based choice: pruned-sequential page cost vs index entry walk +
/// random heap fetches. Malformed statistics (NaN or out-of-range
/// fractions) fall back to the always-correct sequential scan.
/// estimated_selectivity reports the index-entry fraction.
PlanChoice ChooseAccessPath(const TableStatsView& stats, bool index_available,
                            const PlannerOptions& options = {});

}  // namespace segdiff

#endif  // SEGDIFF_QUERY_PLANNER_H_
