// Access-path executors: sequential scan (serial or partitioned across a
// thread pool) and index range scan.

#ifndef SEGDIFF_QUERY_EXECUTOR_H_
#define SEGDIFF_QUERY_EXECUTOR_H_

#include <functional>
#include <vector>

#include "common/governance.h"
#include "common/result.h"
#include "common/thread_pool.h"
#include "index/bplus_tree.h"
#include "query/predicate.h"
#include "storage/table.h"

namespace segdiff {

class DatabaseSnapshot;

/// Execution counters, reported by both executors. Columnar segments
/// count under the same fields (a pruned segment adds its page span to
/// pages_pruned and its rows to rows_pruned), so row-format and
/// columnar scans of the same data report identical totals.
struct ScanStats {
  uint64_t rows_scanned = 0;          ///< records examined (seq scan)
  uint64_t rows_pruned = 0;           ///< records skipped via zone stats
  uint64_t pages_scanned = 0;         ///< pages evaluated (seq scan)
  uint64_t pages_pruned = 0;          ///< pages skipped via zone stats
  uint64_t index_entries_scanned = 0; ///< index keys examined (index scan)
  uint64_t heap_fetches = 0;          ///< random heap reads (index scan)
  uint64_t rows_matched = 0;
  /// Corrupt pages routed around (SeqScanOptions::skip_quarantined):
  /// the result is PARTIAL whenever these are non-zero — callers must
  /// surface that, never silently return the subset.
  uint64_t pages_quarantined = 0;
  uint64_t rows_quarantined = 0;  ///< records lost to quarantined ranges

  void Add(const ScanStats& other) {
    rows_scanned += other.rows_scanned;
    rows_pruned += other.rows_pruned;
    pages_scanned += other.pages_scanned;
    pages_pruned += other.pages_pruned;
    index_entries_scanned += other.index_entries_scanned;
    heap_fetches += other.heap_fetches;
    rows_matched += other.rows_matched;
    pages_quarantined += other.pages_quarantined;
    rows_quarantined += other.rows_quarantined;
  }
};

/// Receives each matching record. A null callback turns the scan into a
/// count-only scan (stats still fully populated); over columnar
/// segments this is the fastest path — only the predicate's columns are
/// decoded and matches are popcounted straight off the selection
/// bitmap, never materializing a row.
using RowCallback = std::function<Status(const char* record, RecordId id)>;

/// Sequential-scan tuning knobs. The defaults are the fast path; the
/// flags exist so benchmarks and differential tests can ablate each
/// layer against the row-at-a-time baseline.
struct SeqScanOptions {
  /// Evaluate pages with the batched selection-bitmap kernel instead of
  /// per-row Predicate::Matches.
  bool batch = true;
  /// Skip pages whose zone-map ranges cannot satisfy the predicate's
  /// column conditions (only when the table has a zone map). Pruned
  /// pages are still fetched — and checksum-verified — by the buffer
  /// pool; pruning saves the decode and predicate work, not the IO.
  bool prune = true;
  /// Governance check point (non-owning; may be null = ungoverned). The
  /// scan checks it once per heap page and every
  /// kGovernanceCheckInterval emitted rows inside the residual loop, so
  /// a cancel/deadline stops the scan within one page of work; partial
  /// state (page pins, partition sinks) unwinds through the Status path.
  const QueryContext* context = nullptr;
  /// Point-in-time view to scan (non-owning; must outlive the scan).
  /// Null scans the live table. With a snapshot, the heap walk, the
  /// page bytes, and the zone map all come from the frozen view, so a
  /// scan concurrent with ingest sees exactly the rows present at
  /// Database::CreateSnapshot() — columnar segments are immutable and
  /// are read directly either way.
  const DatabaseSnapshot* snapshot = nullptr;
  /// Degraded-store mode: route around corrupt (quarantined) heap pages
  /// and columnar segments instead of failing the scan, counting them
  /// in ScanStats::pages_quarantined / rows_quarantined. The caller
  /// MUST check those counters and flag the result as partial; off (the
  /// default), corruption fails the scan loudly.
  bool skip_quarantined = false;
};

/// Full-table scan applying `predicate` to every record: the table's
/// compressed columnar segments first (vectorized decode feeding the
/// selection-bitmap kernels), then the row-format heap tail — insertion
/// order overall.
Status SeqScan(const Table& table, const Predicate& predicate,
               const RowCallback& callback, ScanStats* stats = nullptr,
               const SeqScanOptions& options = {});

/// Returns the per-partition row callback for partition `i` of a
/// parallel scan. Each partition's callback runs on exactly one worker
/// thread, so a factory handing out partition-private sinks (e.g. one
/// result vector per partition, concatenated afterwards) needs no
/// locking.
using PartitionSinkFactory = std::function<RowCallback(size_t partition)>;

/// Partitioned full-table scan: splits the table's work units —
/// columnar segments (weighted by their page span) followed by heap
/// pages (weight 1) — into `num_partitions` contiguous runs executed
/// concurrently on `pool` (the calling thread participates). Rows are
/// visited exactly once overall; per-partition ScanStats are merged
/// into `stats` in partition order, so totals equal the serial
/// SeqScan's. Early-stop (`keep_going`) inside a callback only stops
/// that partition.
Status ParallelSeqScan(const Table& table, const Predicate& predicate,
                       ThreadPool* pool, size_t num_partitions,
                       const PartitionSinkFactory& make_sink,
                       ScanStats* stats = nullptr,
                       const SeqScanOptions& options = {});

/// Range scan over a B+-tree index. Starts at the first key >= `lower`,
/// advances while `key_continue(key)` holds, and for each key passing
/// `key_filter` fetches the heap record, applies `residual`, and emits.
/// MySQL-style secondary-index access: every candidate costs one heap
/// fetch, which is why dense queries favour the sequential scan
/// (paper Figures 10-11).
struct IndexScanSpec {
  const BPlusTree* index = nullptr;
  IndexKey lower;
  std::function<bool(const IndexKey&)> key_continue;  ///< stop when false
  std::function<bool(const IndexKey&)> key_filter;    ///< skip when false
  /// Governance check point (may be null), consulted every
  /// kGovernanceCheckInterval index entries during the range walk.
  const QueryContext* context = nullptr;
  /// Point-in-time view (see SeqScanOptions::snapshot): the B+-tree
  /// descent and the heap fetches both read through the snapshot.
  const DatabaseSnapshot* snapshot = nullptr;
  /// Route around candidates whose heap fetch hits a corrupt page
  /// (counted in ScanStats::rows_quarantined) instead of failing; see
  /// SeqScanOptions::skip_quarantined for the caller's obligations.
  bool skip_quarantined = false;
};

Status IndexScan(const Table& table, const IndexScanSpec& spec,
                 const Predicate& residual, const RowCallback& callback,
                 ScanStats* stats = nullptr);

}  // namespace segdiff

#endif  // SEGDIFF_QUERY_EXECUTOR_H_
