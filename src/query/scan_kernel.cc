#include "query/scan_kernel.h"

#include <algorithm>
#include <cmath>
#include <string>

#include "common/env.h"

#if defined(__x86_64__) || defined(_M_X64)
#include <emmintrin.h>
#endif

namespace segdiff {
namespace {

// Sets the low `count` bits; bits at and above `count` stay zero so the
// caller can walk whole words.
void InitBitmap(size_t count, uint64_t* bitmap) {
  const size_t words = (count + 63) / 64;
  for (size_t w = 0; w < words; ++w) {
    bitmap[w] = ~uint64_t{0};
  }
  if (count % 64 != 0) {
    bitmap[words - 1] = ~uint64_t{0} >> (64 - count % 64);
  }
}

// Strided gather of one column into a contiguous buffer: the only part
// of the kernel that touches the record layout; the compare loops below
// then run over plain doubles.
void GatherColumn(const char* records, size_t record_bytes, size_t count,
                  size_t column, double* vals) {
  const char* cell = records + 8 * column;
  for (size_t i = 0; i < count; ++i) {
    vals[i] = DecodeDoubleColumn(cell, 0);
    cell += record_bytes;
  }
}

template <CmpOp Op>
bool CmpScalar(double v, double bound) {
  if constexpr (Op == CmpOp::kLt) {
    return v < bound;
  } else if constexpr (Op == CmpOp::kLe) {
    return v <= bound;
  } else if constexpr (Op == CmpOp::kGt) {
    return v > bound;
  } else if constexpr (Op == CmpOp::kGe) {
    return v >= bound;
  } else {
    return v == bound;
  }
}

template <CmpOp Op>
void AndCompareScalar(const double* vals, size_t count, double bound,
                      uint64_t* bitmap) {
  for (size_t w = 0; w * 64 < count; ++w) {
    const size_t base = w * 64;
    const size_t limit = std::min<size_t>(64, count - base);
    uint64_t m = 0;
    for (size_t b = 0; b < limit; ++b) {
      m |= static_cast<uint64_t>(CmpScalar<Op>(vals[base + b], bound)) << b;
    }
    bitmap[w] &= m;
  }
}

void KernelScalar(const char* records, size_t record_bytes, size_t count,
                  const ColumnCondition* conditions, size_t num_conditions,
                  uint64_t* bitmap) {
  InitBitmap(count, bitmap);
  if (count == 0 || num_conditions == 0) {
    return;
  }
  double vals[kMaxBatchRows];
  for (size_t c = 0; c < num_conditions; ++c) {
    const ColumnCondition& cond = conditions[c];
    GatherColumn(records, record_bytes, count, cond.column, vals);
    switch (cond.op) {
      case CmpOp::kLt:
        AndCompareScalar<CmpOp::kLt>(vals, count, cond.value, bitmap);
        break;
      case CmpOp::kLe:
        AndCompareScalar<CmpOp::kLe>(vals, count, cond.value, bitmap);
        break;
      case CmpOp::kGt:
        AndCompareScalar<CmpOp::kGt>(vals, count, cond.value, bitmap);
        break;
      case CmpOp::kGe:
        AndCompareScalar<CmpOp::kGe>(vals, count, cond.value, bitmap);
        break;
      case CmpOp::kEq:
        AndCompareScalar<CmpOp::kEq>(vals, count, cond.value, bitmap);
        break;
    }
  }
}

#if defined(__x86_64__) || defined(_M_X64)

// SSE2 is the x86-64 baseline: two doubles per compare, all ordered
// (NaN compares false, matching EvalCondition).
template <CmpOp Op>
__m128d Cmp128(__m128d a, __m128d b) {
  if constexpr (Op == CmpOp::kLt) {
    return _mm_cmplt_pd(a, b);
  } else if constexpr (Op == CmpOp::kLe) {
    return _mm_cmple_pd(a, b);
  } else if constexpr (Op == CmpOp::kGt) {
    return _mm_cmpgt_pd(a, b);
  } else if constexpr (Op == CmpOp::kGe) {
    return _mm_cmpge_pd(a, b);
  } else {
    return _mm_cmpeq_pd(a, b);
  }
}

template <CmpOp Op>
void AndCompareSse2(const double* vals, size_t count, double bound,
                    uint64_t* bitmap) {
  const __m128d vb = _mm_set1_pd(bound);
  for (size_t w = 0; w * 64 < count; ++w) {
    const size_t base = w * 64;
    const size_t limit = std::min<size_t>(64, count - base);
    uint64_t m = 0;
    size_t b = 0;
    for (; b + 2 <= limit; b += 2) {
      const __m128d va = _mm_loadu_pd(vals + base + b);
      m |= static_cast<uint64_t>(_mm_movemask_pd(Cmp128<Op>(va, vb))) << b;
    }
    for (; b < limit; ++b) {
      m |= static_cast<uint64_t>(CmpScalar<Op>(vals[base + b], bound)) << b;
    }
    bitmap[w] &= m;
  }
}

void KernelSse2(const char* records, size_t record_bytes, size_t count,
                const ColumnCondition* conditions, size_t num_conditions,
                uint64_t* bitmap) {
  InitBitmap(count, bitmap);
  if (count == 0 || num_conditions == 0) {
    return;
  }
  double vals[kMaxBatchRows];
  for (size_t c = 0; c < num_conditions; ++c) {
    const ColumnCondition& cond = conditions[c];
    GatherColumn(records, record_bytes, count, cond.column, vals);
    switch (cond.op) {
      case CmpOp::kLt:
        AndCompareSse2<CmpOp::kLt>(vals, count, cond.value, bitmap);
        break;
      case CmpOp::kLe:
        AndCompareSse2<CmpOp::kLe>(vals, count, cond.value, bitmap);
        break;
      case CmpOp::kGt:
        AndCompareSse2<CmpOp::kGt>(vals, count, cond.value, bitmap);
        break;
      case CmpOp::kGe:
        AndCompareSse2<CmpOp::kGe>(vals, count, cond.value, bitmap);
        break;
      case CmpOp::kEq:
        AndCompareSse2<CmpOp::kEq>(vals, count, cond.value, bitmap);
        break;
    }
  }
}

#endif  // x86-64

/// Dispatch over a contiguous column batch: same compare loops as the
/// page kernels, minus the gather.
void ColumnCompareScalar(const double* vals, size_t count, CmpOp op,
                         double bound, uint64_t* bitmap) {
  switch (op) {
    case CmpOp::kLt:
      AndCompareScalar<CmpOp::kLt>(vals, count, bound, bitmap);
      break;
    case CmpOp::kLe:
      AndCompareScalar<CmpOp::kLe>(vals, count, bound, bitmap);
      break;
    case CmpOp::kGt:
      AndCompareScalar<CmpOp::kGt>(vals, count, bound, bitmap);
      break;
    case CmpOp::kGe:
      AndCompareScalar<CmpOp::kGe>(vals, count, bound, bitmap);
      break;
    case CmpOp::kEq:
      AndCompareScalar<CmpOp::kEq>(vals, count, bound, bitmap);
      break;
  }
}

#if defined(__x86_64__) || defined(_M_X64)

void ColumnCompareSse2(const double* vals, size_t count, CmpOp op,
                       double bound, uint64_t* bitmap) {
  switch (op) {
    case CmpOp::kLt:
      AndCompareSse2<CmpOp::kLt>(vals, count, bound, bitmap);
      break;
    case CmpOp::kLe:
      AndCompareSse2<CmpOp::kLe>(vals, count, bound, bitmap);
      break;
    case CmpOp::kGt:
      AndCompareSse2<CmpOp::kGt>(vals, count, bound, bitmap);
      break;
    case CmpOp::kGe:
      AndCompareSse2<CmpOp::kGe>(vals, count, bound, bitmap);
      break;
    case CmpOp::kEq:
      AndCompareSse2<CmpOp::kEq>(vals, count, bound, bitmap);
      break;
  }
}

#endif  // x86-64

struct KernelChoice {
  ScanKernelFn fn;
  ColumnCompareFn column_fn;
  const char* name;
};

KernelChoice PickKernel() {
  const ScanKernelFn sse2 = Sse2ScanKernel();
  ScanKernelFn avx2 = Avx2ScanKernel();  // null when not compiled in
#if (defined(__x86_64__) || defined(_M_X64)) && \
    (defined(__GNUC__) || defined(__clang__))
  if (avx2 != nullptr && !__builtin_cpu_supports("avx2")) {
    avx2 = nullptr;
  }
#else
  avx2 = nullptr;
#endif
  const KernelChoice scalar = {&KernelScalar, ScalarColumnCompare(),
                               "scalar"};
  const KernelChoice with_sse2 = {sse2, Sse2ColumnCompare(), "sse2"};
  const KernelChoice with_avx2 = {avx2, Avx2ColumnCompare(), "avx2"};
  const std::string want = GetEnvString("SEGDIFF_SCAN_KERNEL", "");
  if (want == "scalar") {
    return scalar;
  }
  if (want == "sse2" && sse2 != nullptr) {
    return with_sse2;
  }
  if (want == "avx2" && avx2 != nullptr) {
    return with_avx2;
  }
  // Default (and fallback for unsupported requests): widest available.
  if (avx2 != nullptr) {
    return with_avx2;
  }
  if (sse2 != nullptr) {
    return with_sse2;
  }
  return scalar;
}

const KernelChoice& Active() {
  static const KernelChoice choice = PickKernel();
  return choice;
}

bool RangeCanMatch(const ColumnCondition& cond, double lo, double hi) {
  switch (cond.op) {
    case CmpOp::kLt:
      return lo < cond.value;
    case CmpOp::kLe:
      return lo <= cond.value;
    case CmpOp::kGt:
      return hi > cond.value;
    case CmpOp::kGe:
      return hi >= cond.value;
    case CmpOp::kEq:
      return lo <= cond.value && cond.value <= hi;
  }
  return true;
}

}  // namespace

ScanKernelFn ActiveScanKernel() { return Active().fn; }

const char* ActiveScanKernelName() { return Active().name; }

ScanKernelFn ScalarScanKernel() { return &KernelScalar; }

ScanKernelFn Sse2ScanKernel() {
#if defined(__x86_64__) || defined(_M_X64)
  return &KernelSse2;
#else
  return nullptr;
#endif
}

bool ZoneCanMatch(const ZoneMap& zone_map, size_t zone_idx,
                  const std::vector<ColumnCondition>& conditions) {
  for (const ColumnCondition& cond : conditions) {
    if (cond.column >= zone_map.num_columns()) {
      continue;  // no evidence about this column; cannot prune on it
    }
    const double lo = zone_map.Min(zone_idx, cond.column);
    const double hi = zone_map.Max(zone_idx, cond.column);
    if (std::isnan(lo) || std::isnan(hi)) {
      continue;  // polluted bounds must never justify a skip
    }
    if (lo > hi) {
      // No non-NaN value was observed. With the NaN bit set, every cell
      // of this column is NaN and fails any comparison — the page
      // cannot match. Without it the zone is inconsistent; do not prune.
      if (zone_map.HasNan(zone_idx, cond.column)) {
        return false;
      }
      continue;
    }
    if (!RangeCanMatch(cond, lo, hi)) {
      return false;
    }
  }
  return true;
}

ZoneSurvey SurveyZones(const ZoneMap& zone_map,
                       const std::vector<ColumnCondition>& conditions) {
  ZoneSurvey survey;
  survey.zones_total = zone_map.zone_count();
  survey.rows_total = zone_map.total_rows();
  for (size_t z = 0; z < zone_map.zone_count(); ++z) {
    if (ZoneCanMatch(zone_map, z, conditions)) {
      ++survey.zones_surviving;
      survey.rows_surviving += zone_map.zone(z).rows;
    }
  }
  return survey;
}

void InitSelectionBitmap(size_t count, uint64_t* bitmap) {
  InitBitmap(count, bitmap);
}

ColumnCompareFn ActiveColumnCompare() { return Active().column_fn; }

ColumnCompareFn ScalarColumnCompare() { return &ColumnCompareScalar; }

ColumnCompareFn Sse2ColumnCompare() {
#if defined(__x86_64__) || defined(_M_X64)
  return &ColumnCompareSse2;
#else
  return nullptr;
#endif
}

bool SegmentCanMatch(const ColumnSegmentInfo& info,
                     const std::vector<ColumnCondition>& conditions) {
  for (const ColumnCondition& cond : conditions) {
    if (cond.column >= info.min.size()) {
      continue;  // no evidence about this column; cannot prune on it
    }
    const double lo = info.min[cond.column];
    const double hi = info.max[cond.column];
    if (std::isnan(lo) || std::isnan(hi)) {
      continue;  // polluted bounds must never justify a skip
    }
    if (lo > hi) {
      // No non-NaN value in this column. With the NaN bit set every
      // cell is NaN and fails any comparison — the segment cannot
      // match. Without it the stats are inconsistent; do not prune.
      if ((info.nan_mask >> cond.column) & 1u) {
        return false;
      }
      continue;
    }
    if (!RangeCanMatch(cond, lo, hi)) {
      return false;
    }
  }
  return true;
}

ColumnarSurvey SurveyColumnarSegments(
    const ColumnStore& store,
    const std::vector<ColumnCondition>& conditions) {
  ColumnarSurvey survey;
  survey.segments_total = store.segment_count();
  survey.rows_total = store.row_count();
  survey.pages_total = store.page_count();
  for (const ColumnSegmentInfo& info : store.meta().segments) {
    if (SegmentCanMatch(info, conditions)) {
      ++survey.segments_surviving;
      survey.rows_surviving += info.rows;
      survey.pages_surviving += info.pages;
    }
  }
  return survey;
}

ZoneMap::ColumnRange ColumnarGlobalRange(const ColumnStore& store,
                                         size_t column) {
  ZoneMap::ColumnRange range{1.0, -1.0, false};  // inverted: nothing seen
  bool first = true;
  for (const ColumnSegmentInfo& info : store.meta().segments) {
    if (column >= info.min.size()) {
      continue;
    }
    range.has_nan = range.has_nan || ((info.nan_mask >> column) & 1u) != 0;
    const double lo = info.min[column];
    const double hi = info.max[column];
    if (!(lo <= hi)) {
      continue;  // all-NaN (or polluted) segment contributes no bounds
    }
    if (first) {
      range.lo = lo;
      range.hi = hi;
      first = false;
    } else {
      range.lo = std::min(range.lo, lo);
      range.hi = std::max(range.hi, hi);
    }
  }
  return range;
}

Result<ColumnDecoder> ColumnDecoder::Create(
    ColumnSegmentHandle* handle, const std::vector<size_t>& columns) {
  ColumnDecoder decoder;
  decoder.handle_ = handle;
  decoder.columns_ = columns;
  decoder.buffers_.resize(columns.size());
  decoder.cursors_.reserve(columns.size());
  for (size_t i = 0; i < columns.size(); ++i) {
    const size_t col = columns[i];
    if (col >= handle->num_columns() || col >= ZoneMap::kMaxColumns) {
      return Status::InvalidArgument("decoder column out of range");
    }
    decoder.slot_of_[col] = static_cast<uint8_t>(i);
    SEGDIFF_ASSIGN_OR_RETURN(ColumnCursor cursor, handle->OpenColumn(col));
    decoder.cursors_.push_back(cursor);
  }
  return decoder;
}

size_t ColumnDecoder::NextBatch() {
  const size_t rows = handle_->rows();
  if (next_row_ >= rows) {
    return 0;
  }
  const size_t count = std::min(kColumnBatchRows, rows - next_row_);
  for (size_t i = 0; i < cursors_.size(); ++i) {
    cursors_[i].Decode(count, buffers_[i].vals);
  }
  batch_start_ = next_row_;
  next_row_ += count;
  return count;
}

}  // namespace segdiff
