// Conjunctive predicates over encoded records.
//
// A Predicate is an AND of column comparisons plus an optional residual
// row function for conditions that are not simple comparisons (the line
// query's interpolation test, Section 4.4).

#ifndef SEGDIFF_QUERY_PREDICATE_H_
#define SEGDIFF_QUERY_PREDICATE_H_

#include <functional>
#include <vector>

#include "storage/record.h"

namespace segdiff {

enum class CmpOp : unsigned char { kLt, kLe, kGt, kGe, kEq };

/// column <op> constant, where the column must be kDouble.
struct ColumnCondition {
  size_t column = 0;
  CmpOp op = CmpOp::kLe;
  double value = 0.0;
};

/// Evaluates one condition against an encoded record.
bool EvalCondition(const ColumnCondition& condition, const char* record);

/// AND of conditions and an optional residual function.
class Predicate {
 public:
  Predicate() = default;

  /// The always-true predicate.
  static Predicate True() { return Predicate(); }

  Predicate& And(size_t column, CmpOp op, double value) {
    conditions_.push_back(ColumnCondition{column, op, value});
    return *this;
  }

  /// Adds an arbitrary row test evaluated after the column conditions.
  Predicate& AndResidual(std::function<bool(const char*)> fn) {
    residual_ = std::move(fn);
    return *this;
  }

  bool Matches(const char* record) const {
    for (const ColumnCondition& condition : conditions_) {
      if (!EvalCondition(condition, record)) {
        return false;
      }
    }
    return !residual_ || residual_(record);
  }

  const std::vector<ColumnCondition>& conditions() const {
    return conditions_;
  }

  /// The residual row test (empty when none was set). Batched executors
  /// evaluate conditions() with a kernel and call this only on survivors.
  const std::function<bool(const char*)>& residual() const {
    return residual_;
  }

 private:
  std::vector<ColumnCondition> conditions_;
  std::function<bool(const char*)> residual_;
};

}  // namespace segdiff

#endif  // SEGDIFF_QUERY_PREDICATE_H_
