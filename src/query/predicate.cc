#include "query/predicate.h"

namespace segdiff {

bool EvalCondition(const ColumnCondition& condition, const char* record) {
  const double v = DecodeDoubleColumn(record, condition.column);
  switch (condition.op) {
    case CmpOp::kLt:
      return v < condition.value;
    case CmpOp::kLe:
      return v <= condition.value;
    case CmpOp::kGt:
      return v > condition.value;
    case CmpOp::kGe:
      return v >= condition.value;
    case CmpOp::kEq:
      return v == condition.value;
  }
  return false;
}

}  // namespace segdiff
