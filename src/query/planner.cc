#include "query/planner.h"

#include <algorithm>

namespace segdiff {

PlanChoice ChooseAccessPath(uint64_t row_count, double leading_lo,
                            double leading_hi, double query_hi,
                            bool index_available,
                            const PlannerOptions& options) {
  PlanChoice choice;
  if (!index_available || row_count == 0) {
    choice.path = AccessPath::kSeqScan;
    choice.estimated_selectivity = 1.0;
    return choice;
  }
  // Untrustworthy statistics — an inverted range (stats never collected,
  // or collected from conflicting snapshots) or any NaN — must not flow
  // into the selectivity arithmetic below: a NaN fails every comparison
  // and would fall through to the degenerate branch, where
  // `query_hi >= leading_lo` being false yields selectivity 0 and wrongly
  // picks the index for what may be the whole table. Fall back to the
  // always-correct sequential scan instead.
  if (!(leading_lo <= leading_hi) || !(query_hi == query_hi)) {
    choice.path = AccessPath::kSeqScan;
    choice.estimated_selectivity = 1.0;
    return choice;
  }
  double selectivity = 1.0;
  if (leading_hi > leading_lo) {
    selectivity = (query_hi - leading_lo) / (leading_hi - leading_lo);
    selectivity = std::clamp(selectivity, 0.0, 1.0);
  } else {
    // Degenerate zero-width column: a single distinct value; the range
    // either covers it entirely or not at all.
    selectivity = query_hi >= leading_lo ? 1.0 : 0.0;
  }
  choice.estimated_selectivity = selectivity;
  choice.path = selectivity <= options.index_selectivity_threshold
                    ? AccessPath::kIndexScan
                    : AccessPath::kSeqScan;
  return choice;
}

PlanChoice ChooseAccessPath(const TableStatsView& stats, bool index_available,
                            const PlannerOptions& options) {
  PlanChoice choice;
  choice.estimated_selectivity = 1.0;
  if (!index_available || stats.row_count == 0) {
    return choice;
  }
  const bool fractions_valid =
      stats.index_entry_fraction >= 0.0 && stats.index_entry_fraction <= 1.0 &&
      stats.heap_fetch_fraction >= 0.0 && stats.heap_fetch_fraction <= 1.0 &&
      stats.random_fetch_cost_scale >= 1.0 &&
      stats.random_fetch_cost_scale <= kColumnarFetchCostScale;
  if (!fractions_valid || stats.pages_after_pruning > stats.pages_total) {
    return choice;  // untrustworthy stats (incl. NaN): sequential scan
  }
  choice.estimated_selectivity = stats.index_entry_fraction;
  const double rows = static_cast<double>(stats.row_count);
  const double seq_cost =
      static_cast<double>(stats.pages_after_pruning) * options.seq_page_cost;
  const double index_cost =
      stats.index_entry_fraction * rows * options.index_entry_cost +
      stats.heap_fetch_fraction * rows * options.random_fetch_cost *
          stats.random_fetch_cost_scale;
  if (index_cost < seq_cost) {
    choice.path = AccessPath::kIndexScan;
  }
  return choice;
}

}  // namespace segdiff
