#include "query/planner.h"

#include <algorithm>

namespace segdiff {

PlanChoice ChooseAccessPath(uint64_t row_count, double leading_lo,
                            double leading_hi, double query_hi,
                            bool index_available,
                            const PlannerOptions& options) {
  PlanChoice choice;
  if (!index_available || row_count == 0) {
    choice.path = AccessPath::kSeqScan;
    choice.estimated_selectivity = 1.0;
    return choice;
  }
  // Untrustworthy statistics — an inverted range (stats never collected,
  // or collected from conflicting snapshots) or any NaN — must not flow
  // into the selectivity arithmetic below: a NaN fails every comparison
  // and would fall through to the degenerate branch, where
  // `query_hi >= leading_lo` being false yields selectivity 0 and wrongly
  // picks the index for what may be the whole table. Fall back to the
  // always-correct sequential scan instead.
  if (!(leading_lo <= leading_hi) || !(query_hi == query_hi)) {
    choice.path = AccessPath::kSeqScan;
    choice.estimated_selectivity = 1.0;
    return choice;
  }
  double selectivity = 1.0;
  if (leading_hi > leading_lo) {
    selectivity = (query_hi - leading_lo) / (leading_hi - leading_lo);
    selectivity = std::clamp(selectivity, 0.0, 1.0);
  } else {
    // Degenerate zero-width column: a single distinct value; the range
    // either covers it entirely or not at all.
    selectivity = query_hi >= leading_lo ? 1.0 : 0.0;
  }
  choice.estimated_selectivity = selectivity;
  choice.path = selectivity <= options.index_selectivity_threshold
                    ? AccessPath::kIndexScan
                    : AccessPath::kSeqScan;
  return choice;
}

}  // namespace segdiff
