#include "index/bplus_tree.h"

#include <cstring>
#include <limits>
#include <utility>
#include <vector>

#include "common/coding.h"
#include "common/logging.h"

namespace segdiff {
namespace {

constexpr uint32_t kTreeMagic = 0x42505452;  // "BPTR"
constexpr size_t kNodeHeaderBytes = 16;

bool NodeIsLeaf(const char* page) { return page[0] != 0; }
void SetNodeIsLeaf(char* page, bool is_leaf) { page[0] = is_leaf ? 1 : 0; }
uint8_t NodeArity(const char* page) {
  return static_cast<uint8_t>(page[1]);
}
void SetNodeArity(char* page, uint8_t arity) {
  page[1] = static_cast<char>(arity);
}
uint16_t NodeCount(const char* page) { return DecodeFixed16(page + 2); }
void SetNodeCount(char* page, uint16_t count) {
  EncodeFixed16(page + 2, count);
}
uint64_t NodeLink(const char* page) { return DecodeFixed64(page + 8); }
void SetNodeLink(char* page, uint64_t link) { EncodeFixed64(page + 8, link); }

}  // namespace

int IndexKey::Compare(const IndexKey& a, const IndexKey& b, int arity) {
  for (int i = 0; i < arity; ++i) {
    if (a.vals[i] < b.vals[i]) {
      return -1;
    }
    if (a.vals[i] > b.vals[i]) {
      return 1;
    }
  }
  if (a.rid < b.rid) {
    return -1;
  }
  if (a.rid > b.rid) {
    return 1;
  }
  return 0;
}

IndexKey IndexKey::LowerBound(const std::vector<double>& components) {
  IndexKey key;
  for (size_t i = 0; i < components.size() && i < kMaxIndexArity; ++i) {
    key.vals[i] = components[i];
  }
  key.rid = 0;
  return key;
}

BPlusTree::BPlusTree(BufferPool* pool, PageId meta_page, int arity,
                     PageId root, uint64_t entry_count, uint64_t page_count,
                     int height)
    : pool_(pool),
      allocator_(pool->pager()),
      meta_page_(meta_page),
      arity_(arity),
      root_(root),
      entry_count_(entry_count),
      page_count_(page_count),
      height_(height) {}

size_t BPlusTree::LeafCapacity() const {
  return (kPageCapacity - kNodeHeaderBytes) / LeafEntryBytes();
}

size_t BPlusTree::InternalCapacity() const {
  return (kPageCapacity - kNodeHeaderBytes) / InternalEntryBytes();
}

void BPlusTree::EncodeKey(const IndexKey& key, char* dst) const {
  for (int i = 0; i < arity_; ++i) {
    EncodeDouble(dst + 8 * i, key.vals[i]);
  }
  EncodeFixed64(dst + 8 * arity_, key.rid);
}

IndexKey BPlusTree::DecodeKey(const char* src) const {
  IndexKey key;
  for (int i = 0; i < arity_; ++i) {
    key.vals[i] = DecodeDouble(src + 8 * i);
  }
  key.rid = DecodeFixed64(src + 8 * arity_);
  return key;
}

Result<BPlusTree> BPlusTree::Create(BufferPool* pool, int arity) {
  if (arity < 1 || arity > kMaxIndexArity) {
    return Status::InvalidArgument("index arity must be in [1, 4]");
  }
  BPlusTree bootstrap(pool, kInvalidPageId, arity, kInvalidPageId, 0, 0, 1);
  SEGDIFF_ASSIGN_OR_RETURN(PageHandle meta, bootstrap.NewNodePage());
  SEGDIFF_ASSIGN_OR_RETURN(PageHandle root, bootstrap.NewNodePage());
  SetNodeIsLeaf(root.data(), true);
  SetNodeArity(root.data(), static_cast<uint8_t>(arity));
  SetNodeCount(root.data(), 0);
  SetNodeLink(root.data(), kInvalidPageId);
  root.MarkDirty();

  bootstrap.meta_page_ = meta.page_id();
  bootstrap.root_ = root.page_id();
  bootstrap.page_count_ = 2;
  EncodeFixed32(meta.data(), kTreeMagic);
  meta.MarkDirty();
  meta.Release();
  SEGDIFF_RETURN_IF_ERROR(bootstrap.PersistMeta());
  return bootstrap;
}

Result<PageHandle> BPlusTree::NewNodePage() {
  SEGDIFF_ASSIGN_OR_RETURN(PageId id, allocator_.Allocate());
  return pool_->PinFresh(id);
}

Result<BPlusTree> BPlusTree::Attach(BufferPool* pool, PageId meta_page) {
  SEGDIFF_ASSIGN_OR_RETURN(PageHandle meta, pool->Fetch(meta_page));
  const char* d = meta.data();
  if (DecodeFixed32(d) != kTreeMagic) {
    return Status::Corruption("bad B+tree meta magic");
  }
  const int arity = static_cast<int>(DecodeFixed32(d + 4));
  if (arity < 1 || arity > kMaxIndexArity) {
    return Status::Corruption("bad B+tree arity");
  }
  const PageId root = DecodeFixed64(d + 8);
  const uint64_t entry_count = DecodeFixed64(d + 16);
  const uint64_t page_count = DecodeFixed64(d + 24);
  const int height = static_cast<int>(DecodeFixed32(d + 32));
  return BPlusTree(pool, meta_page, arity, root, entry_count, page_count,
                   height);
}

Status BPlusTree::PersistMeta() {
  SEGDIFF_ASSIGN_OR_RETURN(PageHandle meta, pool_->FetchMut(meta_page_));
  char* d = meta.data();
  EncodeFixed32(d, kTreeMagic);
  EncodeFixed32(d + 4, static_cast<uint32_t>(arity_));
  EncodeFixed64(d + 8, root_);
  EncodeFixed64(d + 16, entry_count_);
  EncodeFixed64(d + 24, page_count_);
  EncodeFixed32(d + 32, static_cast<uint32_t>(height_));
  meta.MarkDirty();
  return Status::OK();
}

Result<BPlusTree::SplitResult> BPlusTree::InsertInto(PageId node_id,
                                                     const IndexKey& key) {
  // FetchMut even on the internal-descent path (which only reads): the
  // copy-on-write redirect for an unchanged page is harmless, and the
  // leaf/split paths below do mutate.
  SEGDIFF_ASSIGN_OR_RETURN(PageHandle node, pool_->FetchMut(node_id));
  char* d = node.data();
  const uint16_t count = NodeCount(d);
  const size_t key_bytes = KeyBytes();

  if (NodeIsLeaf(d)) {
    // Binary search for insertion slot.
    size_t lo = 0;
    size_t hi = count;
    const char* base = d + kNodeHeaderBytes;
    while (lo < hi) {
      const size_t mid = (lo + hi) / 2;
      const IndexKey probe = DecodeKey(base + mid * key_bytes);
      const int cmp = IndexKey::Compare(probe, key, arity_);
      if (cmp == 0) {
        return Status::AlreadyExists("duplicate index key");
      }
      if (cmp < 0) {
        lo = mid + 1;
      } else {
        hi = mid;
      }
    }
    const size_t slot = lo;

    if (count < LeafCapacity()) {
      char* at = d + kNodeHeaderBytes + slot * key_bytes;
      std::memmove(at + key_bytes, at, (count - slot) * key_bytes);
      EncodeKey(key, at);
      SetNodeCount(d, static_cast<uint16_t>(count + 1));
      node.MarkDirty();
      return SplitResult{};
    }

    // Split the leaf: upper half moves to a fresh right sibling.
    SEGDIFF_ASSIGN_OR_RETURN(PageHandle right, NewNodePage());
    ++page_count_;
    char* rd = right.data();
    SetNodeIsLeaf(rd, true);
    SetNodeArity(rd, static_cast<uint8_t>(arity_));
    const size_t keep = (count + 1) / 2;
    const size_t moved = count - keep;
    std::memcpy(rd + kNodeHeaderBytes, d + kNodeHeaderBytes + keep * key_bytes,
                moved * key_bytes);
    SetNodeCount(rd, static_cast<uint16_t>(moved));
    SetNodeLink(rd, NodeLink(d));
    SetNodeCount(d, static_cast<uint16_t>(keep));
    SetNodeLink(d, right.page_id());
    node.MarkDirty();
    right.MarkDirty();

    const IndexKey separator = DecodeKey(rd + kNodeHeaderBytes);
    const PageId right_id = right.page_id();
    // Insert the pending key into the appropriate half (both have room).
    const PageId target =
        IndexKey::Compare(key, separator, arity_) < 0 ? node_id : right_id;
    right.Release();
    node.Release();
    SEGDIFF_ASSIGN_OR_RETURN(SplitResult sub, InsertInto(target, key));
    SEGDIFF_CHECK(!sub.split);
    SplitResult result;
    result.split = true;
    result.separator = separator;
    result.right_page = right_id;
    return result;
  }

  // Internal node: find the child to descend into (last separator <= key).
  const char* base = d + kNodeHeaderBytes;
  const size_t entry_bytes = InternalEntryBytes();
  size_t lo = 0;
  size_t hi = count;
  while (lo < hi) {
    const size_t mid = (lo + hi) / 2;
    const IndexKey probe = DecodeKey(base + mid * entry_bytes);
    if (IndexKey::Compare(probe, key, arity_) <= 0) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  const PageId child =
      lo == 0 ? NodeLink(d)
              : DecodeFixed64(base + (lo - 1) * entry_bytes + key_bytes);
  node.Release();

  SEGDIFF_ASSIGN_OR_RETURN(SplitResult child_split, InsertInto(child, key));
  if (!child_split.split) {
    return SplitResult{};
  }

  // Insert (separator, right_page) into this node at position lo.
  SEGDIFF_ASSIGN_OR_RETURN(PageHandle again, pool_->FetchMut(node_id));
  char* ad = again.data();
  const uint16_t acount = NodeCount(ad);
  char* abase = ad + kNodeHeaderBytes;
  // Recompute the slot (structure below may have changed only in children).
  size_t slot = 0;
  size_t shi = acount;
  while (slot < shi) {
    const size_t mid = (slot + shi) / 2;
    const IndexKey probe = DecodeKey(abase + mid * entry_bytes);
    if (IndexKey::Compare(probe, child_split.separator, arity_) <= 0) {
      slot = mid + 1;
    } else {
      shi = mid;
    }
  }

  if (acount < InternalCapacity()) {
    char* at = abase + slot * entry_bytes;
    std::memmove(at + entry_bytes, at, (acount - slot) * entry_bytes);
    EncodeKey(child_split.separator, at);
    EncodeFixed64(at + key_bytes, child_split.right_page);
    SetNodeCount(ad, static_cast<uint16_t>(acount + 1));
    again.MarkDirty();
    return SplitResult{};
  }

  // Split the internal node. Build the full entry list in memory.
  struct Entry {
    IndexKey key;
    PageId child;
  };
  std::vector<Entry> entries;
  entries.reserve(acount + 1);
  for (size_t i = 0; i < acount; ++i) {
    Entry e;
    e.key = DecodeKey(abase + i * entry_bytes);
    e.child = DecodeFixed64(abase + i * entry_bytes + key_bytes);
    entries.push_back(e);
  }
  entries.insert(entries.begin() + static_cast<std::ptrdiff_t>(slot),
                 Entry{child_split.separator, child_split.right_page});

  const size_t total = entries.size();
  const size_t mid_idx = total / 2;  // middle separator moves up
  SEGDIFF_ASSIGN_OR_RETURN(PageHandle right, NewNodePage());
  ++page_count_;
  char* rd = right.data();
  SetNodeIsLeaf(rd, false);
  SetNodeArity(rd, static_cast<uint8_t>(arity_));
  SetNodeLink(rd, entries[mid_idx].child);  // leftmost child of right node
  const size_t right_n = total - mid_idx - 1;
  for (size_t i = 0; i < right_n; ++i) {
    char* at = rd + kNodeHeaderBytes + i * entry_bytes;
    EncodeKey(entries[mid_idx + 1 + i].key, at);
    EncodeFixed64(at + key_bytes, entries[mid_idx + 1 + i].child);
  }
  SetNodeCount(rd, static_cast<uint16_t>(right_n));
  right.MarkDirty();

  for (size_t i = 0; i < mid_idx; ++i) {
    char* at = abase + i * entry_bytes;
    EncodeKey(entries[i].key, at);
    EncodeFixed64(at + key_bytes, entries[i].child);
  }
  SetNodeCount(ad, static_cast<uint16_t>(mid_idx));
  again.MarkDirty();

  SplitResult result;
  result.split = true;
  result.separator = entries[mid_idx].key;
  result.right_page = right.page_id();
  return result;
}

Status BPlusTree::Insert(const IndexKey& key) {
  for (int i = 0; i < arity_; ++i) {
    if (key.vals[i] != key.vals[i]) {  // NaN check without <cmath>
      return Status::InvalidArgument("NaN index key component");
    }
  }
  SEGDIFF_ASSIGN_OR_RETURN(SplitResult split, InsertInto(root_, key));
  if (split.split) {
    SEGDIFF_ASSIGN_OR_RETURN(PageHandle new_root, NewNodePage());
    ++page_count_;
    char* d = new_root.data();
    SetNodeIsLeaf(d, false);
    SetNodeArity(d, static_cast<uint8_t>(arity_));
    SetNodeLink(d, root_);
    char* at = d + kNodeHeaderBytes;
    EncodeKey(split.separator, at);
    EncodeFixed64(at + KeyBytes(), split.right_page);
    SetNodeCount(d, 1);
    new_root.MarkDirty();
    root_ = new_root.page_id();
    ++height_;
  }
  ++entry_count_;
  return PersistMeta();
}

Status BPlusTree::Delete(const IndexKey& key) {
  // Descend to the leaf that would hold the key.
  PageId node_id = root_;
  const size_t key_bytes = KeyBytes();
  const size_t entry_bytes = InternalEntryBytes();
  for (;;) {
    SEGDIFF_ASSIGN_OR_RETURN(PageHandle node, pool_->Fetch(node_id));
    char* d = node.data();
    const uint16_t count = NodeCount(d);
    char* base = d + kNodeHeaderBytes;
    if (NodeIsLeaf(d)) {
      // Re-fetch the leaf through the mutating path so a live snapshot
      // gets its pre-image before the removal below; the read handle
      // must be released first (its buffer pointer would go stale once
      // the copy-on-write redirect swaps the frame's buffer).
      node.Release();
      SEGDIFF_ASSIGN_OR_RETURN(PageHandle leaf, pool_->FetchMut(node_id));
      char* ld = leaf.data();
      const uint16_t lcount = NodeCount(ld);
      char* lbase = ld + kNodeHeaderBytes;
      size_t lo = 0;
      size_t hi = lcount;
      while (lo < hi) {
        const size_t mid = (lo + hi) / 2;
        const IndexKey probe = DecodeKey(lbase + mid * key_bytes);
        const int cmp = IndexKey::Compare(probe, key, arity_);
        if (cmp == 0) {
          char* at = lbase + mid * key_bytes;
          std::memmove(at, at + key_bytes, (lcount - mid - 1) * key_bytes);
          SetNodeCount(ld, static_cast<uint16_t>(lcount - 1));
          leaf.MarkDirty();
          leaf.Release();
          --entry_count_;
          return PersistMeta();
        }
        if (cmp < 0) {
          lo = mid + 1;
        } else {
          hi = mid;
        }
      }
      return Status::NotFound("index key not present");
    }
    size_t lo = 0;
    size_t hi = count;
    while (lo < hi) {
      const size_t mid = (lo + hi) / 2;
      const IndexKey probe = DecodeKey(base + mid * entry_bytes);
      if (IndexKey::Compare(probe, key, arity_) <= 0) {
        lo = mid + 1;
      } else {
        hi = mid;
      }
    }
    node_id = lo == 0
                  ? NodeLink(d)
                  : DecodeFixed64(base + (lo - 1) * entry_bytes + key_bytes);
  }
}

BPlusTree::Iterator::Iterator(const BPlusTree* tree, PageId leaf,
                              uint16_t slot, const PoolSnapshot* snap)
    : tree_(tree), leaf_(leaf), slot_(slot), snap_(snap) {}

Status BPlusTree::Iterator::LoadCurrent() {
  valid_ = false;
  while (leaf_ != kInvalidPageId) {
    SEGDIFF_ASSIGN_OR_RETURN(PageHandle page,
                             tree_->pool_->Fetch(leaf_, snap_));
    const uint16_t count = NodeCount(page.data());
    if (slot_ < count) {
      key_ = tree_->DecodeKey(page.data() + kNodeHeaderBytes +
                              static_cast<size_t>(slot_) *
                                  tree_->LeafEntryBytes());
      valid_ = true;
      return Status::OK();
    }
    leaf_ = NodeLink(page.data());
    slot_ = 0;
  }
  return Status::OK();
}

Status BPlusTree::Iterator::Next() {
  if (!valid_) {
    return Status::InvalidArgument("Next on invalid iterator");
  }
  ++slot_;
  return LoadCurrent();
}

Result<BPlusTree::Iterator> BPlusTree::Seek(const IndexKey& lower,
                                            const PoolSnapshot* snap) const {
  PageId node_id = root_;
  if (snap != nullptr) {
    // The in-memory root may already be ahead of the snapshot (inserts
    // grow the tree upward); the snapshot's version of the metadata
    // page records the root as of the snapshot epoch.
    SEGDIFF_ASSIGN_OR_RETURN(PageHandle meta, pool_->Fetch(meta_page_, snap));
    if (DecodeFixed32(meta.data()) != kTreeMagic) {
      return Status::Corruption("bad B+tree meta magic in snapshot");
    }
    node_id = DecodeFixed64(meta.data() + 8);
  }
  const size_t key_bytes = KeyBytes();
  const size_t entry_bytes = InternalEntryBytes();
  for (;;) {
    SEGDIFF_ASSIGN_OR_RETURN(PageHandle node, pool_->Fetch(node_id, snap));
    const char* d = node.data();
    const uint16_t count = NodeCount(d);
    const char* base = d + kNodeHeaderBytes;
    if (NodeIsLeaf(d)) {
      size_t lo = 0;
      size_t hi = count;
      while (lo < hi) {
        const size_t mid = (lo + hi) / 2;
        const IndexKey probe = DecodeKey(base + mid * key_bytes);
        if (IndexKey::Compare(probe, lower, arity_) < 0) {
          lo = mid + 1;
        } else {
          hi = mid;
        }
      }
      Iterator it(this, node_id, static_cast<uint16_t>(lo), snap);
      node.Release();
      SEGDIFF_RETURN_IF_ERROR(it.LoadCurrent());
      return it;
    }
    size_t lo = 0;
    size_t hi = count;
    while (lo < hi) {
      const size_t mid = (lo + hi) / 2;
      const IndexKey probe = DecodeKey(base + mid * entry_bytes);
      if (IndexKey::Compare(probe, lower, arity_) <= 0) {
        lo = mid + 1;
      } else {
        hi = mid;
      }
    }
    node_id = lo == 0
                  ? NodeLink(d)
                  : DecodeFixed64(base + (lo - 1) * entry_bytes + key_bytes);
  }
}

Result<BPlusTree::Iterator> BPlusTree::SeekFirst() const {
  IndexKey lowest;
  for (int i = 0; i < arity_; ++i) {
    lowest.vals[i] = -std::numeric_limits<double>::infinity();
  }
  lowest.rid = 0;
  return Seek(lowest);
}

Status BPlusTree::CheckNode(PageId node_id, const IndexKey* lo,
                            const IndexKey* hi, int depth, int* leaf_depth,
                            uint64_t* entries,
                            std::vector<PageId>* leaves_in_order) const {
  SEGDIFF_ASSIGN_OR_RETURN(PageHandle node, pool_->Fetch(node_id));
  const char* d = node.data();
  const uint16_t count = NodeCount(d);
  const char* base = d + kNodeHeaderBytes;
  if (NodeArity(d) != arity_) {
    return Status::Corruption("node arity mismatch");
  }
  if (NodeIsLeaf(d)) {
    if (*leaf_depth == -1) {
      *leaf_depth = depth;
    } else if (*leaf_depth != depth) {
      return Status::Corruption("leaves at differing depths");
    }
    IndexKey prev;
    for (uint16_t i = 0; i < count; ++i) {
      const IndexKey key = DecodeKey(base + i * LeafEntryBytes());
      if (i > 0 && IndexKey::Compare(prev, key, arity_) >= 0) {
        return Status::Corruption("leaf keys out of order");
      }
      if (lo != nullptr && IndexKey::Compare(key, *lo, arity_) < 0) {
        return Status::Corruption("leaf key below fence");
      }
      if (hi != nullptr && IndexKey::Compare(key, *hi, arity_) >= 0) {
        return Status::Corruption("leaf key above fence");
      }
      prev = key;
    }
    *entries += count;
    leaves_in_order->push_back(node_id);
    return Status::OK();
  }
  const size_t entry_bytes = InternalEntryBytes();
  IndexKey prev;
  IndexKey first_sep = DecodeKey(base);
  // Leftmost child: fence (lo, first separator).
  for (uint16_t i = 0; i < count; ++i) {
    const IndexKey key = DecodeKey(base + i * entry_bytes);
    if (i > 0 && IndexKey::Compare(prev, key, arity_) >= 0) {
      return Status::Corruption("internal keys out of order");
    }
    prev = key;
  }
  // Recurse: leftmost child then each entry's right child.
  {
    const IndexKey* child_hi = count > 0 ? &first_sep : hi;
    SEGDIFF_RETURN_IF_ERROR(CheckNode(NodeLink(d), lo, child_hi, depth + 1,
                                      leaf_depth, entries, leaves_in_order));
  }
  for (uint16_t i = 0; i < count; ++i) {
    const IndexKey sep = DecodeKey(base + i * entry_bytes);
    const PageId child = DecodeFixed64(base + i * entry_bytes + KeyBytes());
    IndexKey next_sep;
    const IndexKey* child_hi = hi;
    if (i + 1 < count) {
      next_sep = DecodeKey(base + (i + 1) * entry_bytes);
      child_hi = &next_sep;
    }
    SEGDIFF_RETURN_IF_ERROR(CheckNode(child, &sep, child_hi, depth + 1,
                                      leaf_depth, entries, leaves_in_order));
  }
  return Status::OK();
}

Status BPlusTree::CheckInvariants() const {
  int leaf_depth = -1;
  uint64_t entries = 0;
  std::vector<PageId> leaves;
  SEGDIFF_RETURN_IF_ERROR(CheckNode(root_, nullptr, nullptr, 0, &leaf_depth,
                                    &entries, &leaves));
  if (entries != entry_count_) {
    return Status::Corruption("entry count mismatch");
  }
  // Leaf chain must visit the leaves in left-to-right order.
  for (size_t i = 0; i + 1 < leaves.size(); ++i) {
    SEGDIFF_ASSIGN_OR_RETURN(PageHandle leaf, pool_->Fetch(leaves[i]));
    if (NodeLink(leaf.data()) != leaves[i + 1]) {
      return Status::Corruption("broken leaf chain");
    }
  }
  if (!leaves.empty()) {
    SEGDIFF_ASSIGN_OR_RETURN(PageHandle last, pool_->Fetch(leaves.back()));
    if (NodeLink(last.data()) != kInvalidPageId) {
      return Status::Corruption("leaf chain does not terminate");
    }
  }
  return Status::OK();
}

}  // namespace segdiff
