// B+-tree over composite double keys.
//
// Keys are K doubles (K in [1, 4]) plus a packed RecordId tiebreaker, so
// every stored key is unique and the tree needs no duplicate handling.
// Leaves form a forward-linked chain for range scans. The workload is
// append/insert + range scan (the paper's feature tables are never
// updated or deleted from), so deletion is intentionally unsupported.
//
// Node page layout (both kinds):
//   [0]      u8  is_leaf
//   [1]      u8  arity
//   [2..3]   u16 entry count
//   [4..7]   reserved
//   [8..15]  u64 leaf: next-leaf page id / internal: leftmost child
//   [16.. ]  entries
// Leaf entry:      key (8*K + 8 bytes; the trailing 8 bytes are the rid)
// Internal entry:  key (8*K + 8) + u64 right-child page id
//
// A one-page metadata block (magic, arity, root, counters) anchors the
// tree; the catalog stores only that page id.

#ifndef SEGDIFF_INDEX_BPLUS_TREE_H_
#define SEGDIFF_INDEX_BPLUS_TREE_H_

#include <cstdint>
#include <vector>

#include "common/result.h"
#include "storage/buffer_pool.h"
#include "storage/extent.h"
#include "storage/page.h"

namespace segdiff {

class PoolSnapshot;

/// Maximum number of double components in a key.
constexpr int kMaxIndexArity = 4;

/// A composite key: `arity` doubles plus the record id tiebreaker.
struct IndexKey {
  double vals[kMaxIndexArity] = {0, 0, 0, 0};
  uint64_t rid = 0;

  /// Lexicographic comparison over the first `arity` doubles, then rid.
  /// Returns <0, 0, >0.
  static int Compare(const IndexKey& a, const IndexKey& b, int arity);

  /// Smallest key whose double components equal `vals`: rid = 0.
  static IndexKey LowerBound(const std::vector<double>& components);
};

/// Persistent B+-tree; all page access goes through the buffer pool.
class BPlusTree {
 public:
  /// Allocates the metadata page and an empty root leaf.
  static Result<BPlusTree> Create(BufferPool* pool, int arity);

  /// Attaches to an existing tree via its metadata page.
  static Result<BPlusTree> Attach(BufferPool* pool, PageId meta_page);

  /// Inserts a key (duplicates in all components including rid are
  /// rejected with AlreadyExists).
  Status Insert(const IndexKey& key);

  /// Removes a key; NotFound when absent. Leaves are not rebalanced
  /// (deletes are rare in the append-mostly feature workload, so
  /// under-full leaves are tolerated and space is reclaimed on the next
  /// rebuild); all ordering/scan invariants are preserved.
  Status Delete(const IndexKey& key);

  /// Forward scanner positioned by Seek*; holds no pinned pages between
  /// Next() calls, so it never starves the pool.
  class Iterator {
   public:
    bool Valid() const { return valid_; }
    const IndexKey& key() const { return key_; }
    /// Advances; Valid() turns false past the last key.
    Status Next();

   private:
    friend class BPlusTree;
    Iterator(const BPlusTree* tree, PageId leaf, uint16_t slot,
             const PoolSnapshot* snap);
    Status LoadCurrent();

    const BPlusTree* tree_ = nullptr;
    PageId leaf_ = kInvalidPageId;
    uint16_t slot_ = 0;
    bool valid_ = false;
    const PoolSnapshot* snap_ = nullptr;  ///< non-owning; see Seek
    IndexKey key_;
  };

  /// Positions at the first key >= `lower`. A non-null `snap` pins the
  /// scan to that pool snapshot: the descent starts from the root
  /// recorded in the snapshot's version of the metadata page (rewritten
  /// by every insert, so its pre-image is snapshot-consistent) and every
  /// node page reads through the snapshot. The snapshot must outlive the
  /// returned iterator.
  Result<Iterator> Seek(const IndexKey& lower,
                        const PoolSnapshot* snap = nullptr) const;

  /// Positions at the smallest key.
  Result<Iterator> SeekFirst() const;

  uint64_t entry_count() const { return entry_count_; }
  /// Pages owned by the tree (meta + nodes); SizeBytes() is the paper's
  /// "index size" contribution.
  uint64_t page_count() const { return page_count_; }
  uint64_t SizeBytes() const { return page_count_ * kPageSize; }
  PageId meta_page() const { return meta_page_; }
  int arity() const { return arity_; }
  int height() const { return height_; }

  /// Walks the whole tree validating ordering, fences, and leaf chain;
  /// used by tests.
  Status CheckInvariants() const;

 private:
  BPlusTree(BufferPool* pool, PageId meta_page, int arity, PageId root,
            uint64_t entry_count, uint64_t page_count, int height);

  size_t KeyBytes() const { return 8 * static_cast<size_t>(arity_) + 8; }
  size_t LeafEntryBytes() const { return KeyBytes(); }
  size_t InternalEntryBytes() const { return KeyBytes() + 8; }
  size_t LeafCapacity() const;
  size_t InternalCapacity() const;

  void EncodeKey(const IndexKey& key, char* dst) const;
  IndexKey DecodeKey(const char* src) const;

  /// Result of a child insert that overflowed: a separator to add.
  struct SplitResult {
    bool split = false;
    IndexKey separator;
    PageId right_page = kInvalidPageId;
  };
  Result<SplitResult> InsertInto(PageId node, const IndexKey& key);
  Status PersistMeta();

  Status CheckNode(PageId node, const IndexKey* lo, const IndexKey* hi,
                   int depth, int* leaf_depth, uint64_t* entries,
                   std::vector<PageId>* leaves_in_order) const;

  /// Allocates a node page from this tree's extents.
  Result<PageHandle> NewNodePage();

  BufferPool* pool_;
  ExtentAllocator allocator_;
  PageId meta_page_;
  int arity_;
  PageId root_;
  uint64_t entry_count_;
  uint64_t page_count_;
  int height_;
};

}  // namespace segdiff

#endif  // SEGDIFF_INDEX_BPLUS_TREE_H_
