// Streaming ingestion: the paper stresses that segmentation and
// Algorithm 1 are both ONLINE, so features are queryable as soon as data
// arrive ("no considerable delay for users to search new data"). This
// example simulates a live sensor feed arriving in hourly batches,
// appends each batch to the same SegDiff store, and runs the default
// CAD query after every batch, reporting how result counts and store
// size evolve.
//
//   $ ./streaming_ingest [num_days]

#include <cstdio>
#include <cstdlib>
#include <string>

#include "segdiff/segdiff_index.h"
#include "ts/generator.h"

namespace {

int Fail(const segdiff::Status& status) {
  std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  const int num_days = argc > 1 ? std::atoi(argv[1]) : 4;

  segdiff::CadGeneratorOptions gen;
  gen.num_days = num_days;
  gen.cad_events_per_day = 1.0;
  auto data = segdiff::GenerateCadSeries(gen);
  if (!data.ok()) return Fail(data.status());
  std::printf("feed: %zu observations over %d days, %zu injected events\n",
              data->series.size(), num_days, data->drops.size());

  const std::string path = "/tmp/segdiff_streaming.db";
  std::remove(path.c_str());
  segdiff::SegDiffOptions options;
  options.eps = 0.2;
  options.window_s = 8 * 3600.0;
  auto store = segdiff::SegDiffIndex::Open(path, options);
  if (!store.ok()) return Fail(store.status());

  // Deliver the feed in 6-hour batches, querying after each.
  const double batch_span = 6 * 3600.0;
  const double t0 = data->series.front().t;
  double batch_end = t0 + batch_span;
  segdiff::Series batch;
  size_t delivered = 0;
  std::printf("\n%8s %10s %10s %12s %8s %10s\n", "hour", "samples",
              "segments", "feature rows", "periods", "query ms");

  auto flush_batch = [&](double now_hours) -> int {
    if (batch.size() < 2) {
      return 0;
    }
    if (auto st = (*store)->IngestSeries(batch); !st.ok()) return Fail(st);
    delivered += batch.size();
    batch = segdiff::Series();
    segdiff::SearchStats stats;
    auto hits = (*store)->SearchDrops(3600.0, -3.0, {}, &stats);
    if (!hits.ok()) return Fail(hits.status());
    const auto sizes = (*store)->GetSizes();
    std::printf("%8.0f %10zu %10llu %12llu %8zu %10.2f\n", now_hours,
                delivered,
                static_cast<unsigned long long>((*store)->num_segments()),
                static_cast<unsigned long long>(sizes.feature_rows),
                hits->size(), stats.seconds * 1e3);
    return 0;
  };

  for (const segdiff::Sample& sample : data->series) {
    if (sample.t >= batch_end) {
      if (int rc = flush_batch((batch_end - t0) / 3600.0); rc != 0) return rc;
      while (sample.t >= batch_end) {
        batch_end += batch_span;
      }
    }
    if (auto st = batch.Append(sample); !st.ok()) return Fail(st);
  }
  if (int rc = flush_batch((batch_end - t0) / 3600.0); rc != 0) return rc;

  if (auto st = (*store)->Checkpoint(); !st.ok()) return Fail(st);
  std::printf("\nstore checkpointed at %s; reopen it read-only with the "
              "same SegDiffOptions to keep querying.\n", path.c_str());
  return 0;
}
