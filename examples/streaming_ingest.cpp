// Streaming ingestion: the paper stresses that segmentation and
// Algorithm 1 are both ONLINE, so features are queryable as soon as data
// arrive ("no considerable delay for users to search new data"). This
// example simulates a live sensor feed delivered one observation at a
// time through AppendObservation, runs the default CAD query every six
// simulated hours, and — halfway through the feed — closes the store and
// reopens it to show that ingest state survives: the reopened store
// resumes appending exactly where the old handle left off, with the open
// segment, pair window, and build options restored from the file.
//
//   $ ./streaming_ingest [num_days]

#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>

#include "segdiff/segdiff_index.h"
#include "ts/generator.h"

namespace {

int Fail(const segdiff::Status& status) {
  std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  const int num_days = argc > 1 ? std::atoi(argv[1]) : 4;

  segdiff::CadGeneratorOptions gen;
  gen.num_days = num_days;
  gen.cad_events_per_day = 1.0;
  auto data = segdiff::GenerateCadSeries(gen);
  if (!data.ok()) return Fail(data.status());
  std::printf("feed: %zu observations over %d days, %zu injected events\n",
              data->series.size(), num_days, data->drops.size());

  const std::string path = "/tmp/segdiff_streaming.db";
  std::remove(path.c_str());
  segdiff::SegDiffOptions options;
  options.eps = 0.2;
  options.window_s = 8 * 3600.0;
  auto opened = segdiff::SegDiffIndex::Open(path, options);
  if (!opened.ok()) return Fail(opened.status());
  std::unique_ptr<segdiff::SegDiffIndex> store = std::move(opened).value();

  const double report_span = 6 * 3600.0;
  const double t0 = data->series.front().t;
  const size_t half = data->series.size() / 2;
  double next_report = t0 + report_span;
  bool reopened = false;
  std::printf("\n%8s %10s %10s %12s %8s %10s\n", "hour", "samples",
              "segments", "feature rows", "periods", "query ms");

  auto report = [&](double now_hours) -> int {
    // Features of the open trailing segment are not searchable yet; the
    // closed prefix is, with no batch boundary required.
    segdiff::SearchStats stats;
    auto hits = store->SearchDrops(3600.0, -3.0, {}, &stats);
    if (!hits.ok()) return Fail(hits.status());
    const auto sizes = store->GetSizes();
    std::printf("%8.0f %10llu %10llu %12llu %8zu %10.2f\n", now_hours,
                static_cast<unsigned long long>(store->num_observations()),
                static_cast<unsigned long long>(store->num_segments()),
                static_cast<unsigned long long>(sizes.feature_rows),
                hits->size(), stats.seconds * 1e3);
    return 0;
  };

  for (size_t i = 0; i < data->series.size(); ++i) {
    const segdiff::Sample& sample = data->series[i];
    if (!reopened && i == half) {
      // Simulate a collection-process restart: drop the handle (which
      // persists the ingest state) and reopen. Build parameters are
      // adopted from the store, so default options suffice.
      store.reset();
      segdiff::SegDiffOptions resume;
      resume.create_if_missing = false;
      auto back = segdiff::SegDiffIndex::Open(path, resume);
      if (!back.ok()) return Fail(back.status());
      store = std::move(back).value();
      reopened = true;
      std::printf("%8s reopened mid-stream: resuming at observation %llu "
                  "(eps=%g adopted from the store)\n", "--",
                  static_cast<unsigned long long>(store->num_observations()),
                  store->options().eps);
    }
    while (sample.t >= next_report) {
      if (int rc = report((next_report - t0) / 3600.0); rc != 0) return rc;
      next_report += report_span;
    }
    if (auto st = store->AppendObservation(sample.t, sample.v); !st.ok()) {
      return Fail(st);
    }
  }
  // End of feed: finalize the open segment so the tail is searchable.
  if (auto st = store->FlushPending(); !st.ok()) return Fail(st);
  if (int rc = report((data->series.back().t - t0) / 3600.0); rc != 0) {
    return rc;
  }

  if (auto st = store->Checkpoint(); !st.ok()) return Fail(st);
  std::printf("\nstore checkpointed at %s; reopen it to keep querying or "
              "appending.\n", path.c_str());
  return 0;
}
