// Quickstart: build a SegDiff store over a month of synthetic sensor
// data and search for cold-air-drainage drops (>= 3 degC within 1 hour).
//
//   $ ./quickstart [db_path]

#include <cstdio>
#include <string>

#include "segdiff/segdiff_index.h"
#include "ts/generator.h"

namespace {

int Fail(const segdiff::Status& status) {
  std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string db_path = argc > 1 ? argv[1] : "/tmp/segdiff_quickstart.db";
  std::remove(db_path.c_str());

  // 1. Get data: a month of 5-minute temperature samples with injected
  //    cold-air-drainage events (stand-in for the James Reserve feed).
  segdiff::CadGeneratorOptions gen;
  gen.num_days = 30;
  auto data = segdiff::GenerateCadSeries(gen);
  if (!data.ok()) return Fail(data.status());
  std::printf("generated %zu observations, %zu injected CAD drops\n",
              data->series.size(), data->drops.size());

  // 2. Build the SegDiff store: segmentation at eps/2, Algorithm 1
  //    feature extraction, feature tables + B+-tree indexes.
  segdiff::SegDiffOptions options;
  options.eps = 0.2;               // degrees Celsius
  options.window_s = 8 * 3600.0;   // support queries up to 8 hours
  auto index = segdiff::SegDiffIndex::Open(db_path, options);
  if (!index.ok()) return Fail(index.status());
  if (auto s = (*index)->IngestSeries(data->series); !s.ok()) return Fail(s);

  const auto sizes = (*index)->GetSizes();
  std::printf("segments: %llu   feature rows: %llu   features: %llu bytes\n",
              static_cast<unsigned long long>((*index)->num_segments()),
              static_cast<unsigned long long>(sizes.feature_rows),
              static_cast<unsigned long long>(sizes.feature_bytes));

  // 3. Search: drops of at least 3 degC within 1 hour.
  segdiff::SearchStats stats;
  auto results = (*index)->SearchDrops(3600.0, -3.0, {}, &stats);
  if (!results.ok()) return Fail(results.status());

  std::printf("found %zu candidate periods in %.3f ms\n", results->size(),
              stats.seconds * 1e3);
  size_t shown = 0;
  for (const segdiff::PairId& pair : *results) {
    if (++shown > 5) {
      std::printf("  ... (%zu more)\n", results->size() - 5);
      break;
    }
    std::printf(
        "  drop starts in [%.0f, %.0f] s and ends in [%.0f, %.0f] s\n",
        pair.t_d, pair.t_c, pair.t_b, pair.t_a);
  }
  return 0;
}
