// Cold-Air-Drainage exploration: the paper's motivating scenario.
//
// Generates a multi-sensor canyon transect (stand-in for the James
// Reserve deployment), preprocesses each sensor with the robust
// smoother, builds one SegDiff store per sensor, and then explores CAD
// events interactively the way the paper's biologists do: sweeping the
// drop threshold V and the time span T, and checking the hits against
// the generator's injected ground-truth events.
//
//   $ ./cad_exploration [num_days] [num_sensors]

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "segdiff/episodes.h"
#include "segdiff/segdiff_index.h"
#include "segdiff/verify.h"
#include "ts/generator.h"
#include "ts/smoothing.h"

namespace {

int Fail(const segdiff::Status& status) {
  std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
  return 1;
}

/// True when a returned pair overlaps an injected drop's falling phase.
bool MatchesInjected(const segdiff::PairId& pair,
                     const segdiff::InjectedDrop& drop) {
  return pair.t_d <= drop.t_bottom && drop.t_start <= pair.t_a;
}

}  // namespace

int main(int argc, char** argv) {
  const int num_days = argc > 1 ? std::atoi(argv[1]) : 21;
  const int num_sensors = argc > 2 ? std::atoi(argv[2]) : 5;

  std::printf("Generating %d days x %d sensors of canyon transect data...\n",
              num_days, num_sensors);
  segdiff::CadGeneratorOptions gen;
  gen.num_days = num_days;
  gen.cad_events_per_day = 0.7;
  gen.spike_probability = 0.001;  // occasional sensor glitches
  auto transect = segdiff::GenerateCadTransect(gen, num_sensors);
  if (!transect.ok()) return Fail(transect.status());

  // One SegDiff store per sensor, fed the anomaly-filtered + smoothed
  // series (the paper's preprocessing).
  std::vector<std::unique_ptr<segdiff::SegDiffIndex>> stores;
  for (int s = 0; s < num_sensors; ++s) {
    auto filtered =
        segdiff::HampelFilter((*transect)[s].series, segdiff::HampelOptions{});
    if (!filtered.ok()) return Fail(filtered.status());
    segdiff::LoessOptions loess;
    loess.bandwidth_s = 1500.0;
    auto smoothed = segdiff::RobustLoess(*filtered, loess);
    if (!smoothed.ok()) return Fail(smoothed.status());

    const std::string path =
        "/tmp/segdiff_cad_sensor" + std::to_string(s) + ".db";
    std::remove(path.c_str());
    segdiff::SegDiffOptions options;
    options.eps = 0.2;
    options.window_s = 8 * 3600.0;
    auto store = segdiff::SegDiffIndex::Open(path, options);
    if (!store.ok()) return Fail(store.status());
    if (auto st = (*store)->IngestSeries(*smoothed); !st.ok()) return Fail(st);
    stores.push_back(std::move(store).value());
  }

  // Exploration sweep: the biologists started from "3 degC in 1 hour"
  // and wanted to vary both knobs.
  std::printf("\n%-22s", "sensor:");
  for (int s = 0; s < num_sensors; ++s) std::printf("   s%-4d", s);
  std::printf("  injected\n");
  for (double v : {-2.0, -3.0, -5.0, -8.0}) {
    for (double t_hours : {0.5, 1.0, 2.0}) {
      std::printf("V=%-4.0f T=%-3.1fh  periods:", v, t_hours);
      for (int s = 0; s < num_sensors; ++s) {
        auto hits = stores[static_cast<size_t>(s)]->SearchDrops(
            t_hours * 3600.0, v);
        if (!hits.ok()) return Fail(hits.status());
        std::printf("  %5zu", hits->size());
      }
      std::printf("  %7zu\n", (*transect)[0].drops.size());
    }
  }

  // Recall check against ground truth for the default query: every
  // injected drop of >= 3 degC should be touched by some returned pair.
  std::printf("\nRecall of injected CAD events (V=-3, T=1h):\n");
  for (int s = 0; s < num_sensors; ++s) {
    auto hits = stores[static_cast<size_t>(s)]->SearchDrops(3600.0, -3.0);
    if (!hits.ok()) return Fail(hits.status());
    const auto& drops = (*transect)[static_cast<size_t>(s)].drops;
    size_t found = 0;
    for (const segdiff::InjectedDrop& drop : drops) {
      const bool hit = std::any_of(
          hits->begin(), hits->end(), [&](const segdiff::PairId& pair) {
            return MatchesInjected(pair, drop);
          });
      found += hit ? 1 : 0;
    }
    std::printf("  sensor %d: %zu/%zu injected events recalled, %zu "
                "candidate periods\n",
                s, found, drops.size(), hits->size());
  }

  // Coalesce the pair soup into human-sized episodes, then refine each
  // episode's steepest event from the raw (unsmoothed) series.
  std::printf("\nEpisodes on sensor 0 (V=-3, T=1h), refined against the "
              "raw series:\n");
  auto pairs = stores[0]->SearchDrops(3600.0, -3.0);
  if (!pairs.ok()) return Fail(pairs.status());
  const auto episodes = segdiff::CoalesceEpisodes(*pairs, 1800.0);
  std::printf("  %zu pairs -> %zu episodes\n", pairs->size(),
              episodes.size());
  for (const segdiff::Episode& episode : episodes) {
    segdiff::PairId span{episode.t_begin, episode.t_end, episode.t_begin,
                         episode.t_end};
    auto refined =
        segdiff::RefineDrop((*transect)[0].series, span, 3600.0);
    if (!refined.ok()) return Fail(refined.status());
    if (!refined->feasible) continue;
    std::printf("  day %5.2f, %2.0f min window: steepest drop %.2f degC "
                "(%.0f..%.0f s), %zu pairs merged\n",
                episode.t_begin / 86400.0,
                (refined->t_end - refined->t_start) / 60.0, refined->dv,
                refined->t_start, refined->t_end, episode.pair_count);
  }
  return 0;
}
