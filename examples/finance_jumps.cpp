// Jump search on a price series: the paper generalizes the problem to
// any 1-D time series and supports jumps symmetric to drops. This
// example scans minute-bar prices for abrupt moves (>= J units within M
// minutes) in both directions and cross-checks against the naive
// oracle — a pattern usable for circuit-breaker forensics or data-feed
// glitch hunting.
//
//   $ ./finance_jumps [num_points]

#include <cstdio>
#include <cstdlib>
#include <string>

#include "segdiff/naive.h"
#include "segdiff/segdiff_index.h"
#include "segdiff/verify.h"
#include "ts/generator.h"

namespace {

int Fail(const segdiff::Status& status) {
  std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  const int num_points = argc > 1 ? std::atoi(argv[1]) : 30000;

  segdiff::FinanceGeneratorOptions gen;
  gen.num_points = num_points;
  gen.jump_probability = 0.0008;
  auto series = segdiff::GenerateFinanceSeries(gen);
  if (!series.ok()) return Fail(series.status());
  const auto stats = series->Stats();
  std::printf("price series: %zu minute bars, range [%.2f, %.2f]\n",
              series->size(), stats.min_v, stats.max_v);

  const std::string path = "/tmp/segdiff_finance.db";
  std::remove(path.c_str());
  segdiff::SegDiffOptions options;
  options.eps = 0.1;              // price units
  options.window_s = 2 * 3600.0;  // support windows up to 2 hours
  auto store = segdiff::SegDiffIndex::Open(path, options);
  if (!store.ok()) return Fail(store.status());
  if (auto st = (*store)->IngestSeries(*series); !st.ok()) return Fail(st);

  const auto sizes = (*store)->GetSizes();
  std::printf("indexed: %llu segments, %llu feature rows (%.1f KiB)\n",
              static_cast<unsigned long long>((*store)->num_segments()),
              static_cast<unsigned long long>(sizes.feature_rows),
              sizes.feature_bytes / 1024.0);

  segdiff::NaiveSearcher naive(*series);
  for (double magnitude : {2.0, 4.0, 8.0}) {
    for (double minutes : {5.0, 30.0}) {
      const double T = minutes * 60.0;
      auto ups = (*store)->SearchJumps(T, magnitude);
      if (!ups.ok()) return Fail(ups.status());
      auto downs = (*store)->SearchDrops(T, -magnitude);
      if (!downs.ok()) return Fail(downs.status());

      // Sanity: SegDiff must cover everything the oracle sees.
      const auto true_ups = naive.SearchJumps(T, magnitude);
      const auto up_coverage = segdiff::CheckCoverage(true_ups, *ups);
      std::printf(
          "move >= %4.1f within %4.0f min: %4zu up periods, %4zu down "
          "periods (oracle: %5zu up events, all covered: %s)\n",
          magnitude, minutes, ups->size(), downs->size(), true_ups.size(),
          up_coverage.AllCovered() ? "yes" : "NO");
    }
  }

  std::printf("\nlargest-window spikes (>= 8.0 in 30 min), first 5:\n");
  auto spikes = (*store)->SearchJumps(1800.0, 8.0);
  if (!spikes.ok()) return Fail(spikes.status());
  size_t shown = 0;
  for (const segdiff::PairId& pair : *spikes) {
    if (++shown > 5) break;
    std::printf("  jump starts around minute %.0f, completes by minute "
                "%.0f\n",
                pair.t_d / 60.0, pair.t_a / 60.0);
  }
  if (spikes->empty()) {
    std::printf("  (none at this threshold; try a longer series)\n");
  }
  return 0;
}
