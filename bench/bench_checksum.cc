// Checksum overhead: what per-page CRC32C integrity costs.
//
//   crc32c        raw checksum throughput (the upper bound on overhead)
//   ingest        observations/second through the full pipeline; every
//                 page write stamps a trailer, so stamping cost is
//                 included (there is no un-stamped write path to compare
//                 against — stamping is not optional in format v2)
//   cold scan     a full drop search on a cold buffer pool, with read
//                 verification on vs off; the delta is the per-read
//                 verification cost, the only part of the checksum
//                 machinery a knob can remove
//
// Results additionally land in BENCH_checksum.json.
//
//   bench_checksum [--quick]   (--quick: days-scale store + 1 scan rep,
//                               smoke only — proves the binary runs)

#include <algorithm>
#include <cstring>
#include <iostream>
#include <string>
#include <vector>

#include "benchutil/report.h"
#include "benchutil/workload.h"
#include "common/crc32c.h"
#include "common/logging.h"
#include "common/stopwatch.h"
#include "segdiff/segdiff_index.h"

namespace segdiff {
namespace {

int g_scan_repetitions = 5;

SegDiffOptions StoreOptions() {
  SegDiffOptions options;
  options.eps = PaperDefaults::kEps;
  options.window_s = PaperDefaults::kWindowS;
  // A pool far smaller than the store keeps the scans IO-bound (every
  // repetition re-reads — and re-verifies — most pages).
  options.buffer_pool_pages = 64;
  return options;
}

/// Raw CRC32C throughput over a buffer larger than L2.
double MeasureCrcThroughput() {
  std::vector<char> buf(16 << 20);
  for (size_t i = 0; i < buf.size(); ++i) {
    buf[i] = static_cast<char>(i * 2654435761u);
  }
  // Warm-up + measurement; fold the checksum into a sink so the loop
  // cannot be optimized away.
  uint32_t sink = 0;
  sink ^= Crc32c(buf.data(), buf.size());
  Stopwatch watch;
  constexpr int kRounds = 8;
  for (int r = 0; r < kRounds; ++r) {
    sink ^= Crc32c(buf.data(), buf.size());
  }
  const double seconds = watch.ElapsedSeconds();
  if (sink == 0xDEADBEEF) {
    std::cout << "";  // defeat dead-code elimination
  }
  return kRounds * static_cast<double>(buf.size()) / seconds;
}

/// Mean seconds per cold-cache drop search at the given verify setting.
double MeasureColdScan(SegDiffIndex* store, bool verify, uint64_t* pairs) {
  store->db()->pager()->set_verify_checksums(verify);
  double total = 0.0;
  for (int r = 0; r < g_scan_repetitions; ++r) {
    SEGDIFF_CHECK_OK(store->DropCaches());
    Stopwatch watch;
    SearchStats stats;
    auto results = store->SearchDrops(2.0 * kHourSeconds, -3.0, {}, &stats);
    SEGDIFF_CHECK(results.ok()) << results.status().ToString();
    total += watch.ElapsedSeconds();
    *pairs = stats.pairs_returned;
  }
  store->db()->pager()->set_verify_checksums(true);
  return total / g_scan_repetitions;
}

int RunBench(bool quick) {
  WorkloadConfig config = WorkloadConfig::FromEnv();
  if (quick) {
    // The tier-1 bench smoke: a days-scale store and a single scan rep,
    // just to prove the binary executes end to end.
    config.num_days = std::min(config.num_days, 4);
    g_scan_repetitions = 1;
  }
  auto series_or = MakeSmoothedBenchSeries(config);
  SEGDIFF_CHECK(series_or.ok()) << series_or.status().ToString();
  const Series& series = *series_or;

  PrintBanner(std::cout,
              "Checksum overhead: CRC32C per-page integrity (format v2)");
  std::cout << "workload: " << series.size() << " observations, hardware "
            << (Crc32cHardwareAccelerated() ? "SSE4.2 CRC32" : "table-driven")
            << " checksums\n";

  JsonValue results = JsonValue::Array();
  TablePrinter table({"stage", "verify", "wall ms", "rate"});

  const double crc_bytes_per_s = MeasureCrcThroughput();
  table.AddRow({"crc32c 16MiB", "-", "-",
                Fmt(crc_bytes_per_s / 1e9, 2) + " GB/s"});
  {
    JsonValue row = JsonValue::Object();
    row.Set("stage", std::string("crc32c"));
    row.Set("bytes_per_s", crc_bytes_per_s);
    row.Set("hardware_accelerated",
            static_cast<int64_t>(Crc32cHardwareAccelerated()));
    results.Append(std::move(row));
  }

  const std::string path = BenchDbPath("checksum");
  auto store = SegDiffIndex::Open(path, StoreOptions());
  SEGDIFF_CHECK(store.ok()) << store.status().ToString();
  Stopwatch ingest_watch;
  SEGDIFF_CHECK_OK((*store)->IngestSeries(series));
  SEGDIFF_CHECK_OK((*store)->Checkpoint());
  const double ingest_seconds = ingest_watch.ElapsedSeconds();
  const double obs_per_s = series.size() / ingest_seconds;
  table.AddRow({"ingest", "stamp", Fmt(ingest_seconds * 1e3, 1),
                Fmt(obs_per_s / 1e3, 1) + "K obs/s"});
  {
    JsonValue row = JsonValue::Object();
    row.Set("stage", std::string("ingest"));
    row.Set("seconds", ingest_seconds);
    row.Set("obs_per_s", obs_per_s);
    results.Append(std::move(row));
  }

  uint64_t pairs_on = 0;
  uint64_t pairs_off = 0;
  const double scan_on = MeasureColdScan(store->get(), true, &pairs_on);
  const double scan_off = MeasureColdScan(store->get(), false, &pairs_off);
  SEGDIFF_CHECK(pairs_on == pairs_off)
      << "verification must not change results";
  const double overhead =
      scan_off > 0.0 ? (scan_on - scan_off) / scan_off * 100.0 : 0.0;
  table.AddRow({"cold drop search", "on", Fmt(scan_on * 1e3, 2),
                std::to_string(pairs_on) + " pairs"});
  table.AddRow({"cold drop search", "off", Fmt(scan_off * 1e3, 2),
                std::to_string(pairs_off) + " pairs"});
  for (const bool verify : {true, false}) {
    JsonValue row = JsonValue::Object();
    row.Set("stage", std::string("cold_scan"));
    row.Set("verify_checksums", static_cast<int64_t>(verify));
    row.Set("seconds", verify ? scan_on : scan_off);
    row.Set("pairs", static_cast<int64_t>(pairs_on));
    results.Append(std::move(row));
  }
  table.Print(std::cout);
  std::cout << "read verification overhead: " << Fmt(overhead, 1)
            << "% of cold-scan wall time (one CRC pass per 8 KiB page "
               "miss; RAM-backed /tmp shows the worst case — against a "
               "real disk the CRC hides entirely inside the IO wait)\n";

  JsonValue root = JsonValue::Object();
  root.Set("bench", "checksum");
  root.Set("observations", static_cast<int64_t>(series.size()));
  root.Set("hardware_accelerated",
           static_cast<int64_t>(Crc32cHardwareAccelerated()));
  root.Set("scan_repetitions", static_cast<int64_t>(g_scan_repetitions));
  root.Set("verify_overhead_pct", overhead);
  root.Set("results", std::move(results));
  const std::string json_path = BenchReportPath("BENCH_checksum.json");
  if (WriteJsonFile(json_path, root)) {
    std::cout << "wrote " << json_path << "\n";
  } else {
    std::cout << "failed to write " << json_path << "\n";
  }
  store->reset();
  RemoveBenchDb(path);
  return 0;
}

}  // namespace
}  // namespace segdiff

int main(int argc, char** argv) {
  bool quick = false;
  for (int i = 1; i < argc; ++i) {
    quick |= std::string(argv[i]) == "--quick";
  }
  return segdiff::RunBench(quick);
}
