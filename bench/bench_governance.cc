// Governance overhead + responsiveness microbench.
//
// Four measurements over a drop2-shaped feature table:
//   cancel    latency from CancellationSource::Cancel() to the governed
//             scan actually returning Status::Cancelled (p50/p99) — the
//             page-granular check interval bounds this
//   deadline  overshoot past a 5 ms deadline before DeadlineExceeded
//             comes back (p50/p99)
//   admit     uncontended AdmissionController Admit+Release round trip
//   overhead  governed (context wired, never firing) vs ungoverned
//             SeqScan wall time — acceptance target <= 2% slowdown
// plus an 8-thread smoke: concurrent governed scans under a 50 ms
// deadline must all reach a terminal status promptly.
//
// Results land in BENCH_governance.json.
//
//   bench_governance [--quick]   (--quick: small table + few reps)
// Env: SEGDIFF_BENCH_GOVERNANCE_ROWS, SEGDIFF_BENCH_QUERY_REPS.

#include <algorithm>
#include <atomic>
#include <chrono>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "benchutil/report.h"
#include "benchutil/workload.h"
#include "common/admission.h"
#include "common/env.h"
#include "common/governance.h"
#include "common/logging.h"
#include "common/random.h"
#include "query/executor.h"
#include "storage/db.h"

namespace segdiff {
namespace {

double NowSeconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

double Percentile(std::vector<double> values, double p) {
  if (values.empty()) return 0.0;
  std::sort(values.begin(), values.end());
  const size_t idx = static_cast<size_t>(
      p * static_cast<double>(values.size() - 1) / 100.0 + 0.5);
  return values[std::min(idx, values.size() - 1)];
}

int RunBench(bool quick) {
  const uint64_t rows = static_cast<uint64_t>(GetEnvInt64(
      "SEGDIFF_BENCH_GOVERNANCE_ROWS", quick ? 50 * 1000 : 1000 * 1000));
  const int reps = quick ? 3
                         : static_cast<int>(GetEnvInt64(
                               "SEGDIFF_BENCH_QUERY_REPS", 15));

  const std::string path = BenchDbPath("governance");
  DatabaseOptions options;
  options.buffer_pool_pages = 32768;
  auto db = Database::Open(path, options);
  SEGDIFF_CHECK(db.ok()) << db.status().ToString();

  std::vector<Column> columns;
  for (const char* name : {"dt1", "dv1", "dt2", "dv2", "t_d", "t_c", "t_b"}) {
    columns.push_back(Column{name, ColumnType::kDouble});
  }
  auto schema = TableSchema::Create(std::move(columns));
  SEGDIFF_CHECK(schema.ok());
  auto table_or = (*db)->CreateTable("drop2", std::move(schema).value());
  SEGDIFF_CHECK(table_or.ok());
  Table* table = *table_or;

  Rng rng(20080325);
  std::vector<double> row_buf(7, 0.0);
  for (uint64_t i = 0; i < rows; ++i) {
    for (size_t c = 0; c < 7; ++c) {
      row_buf[c] = rng.Uniform(0.0, 8.0 * 3600.0);
    }
    SEGDIFF_CHECK_OK(table->InsertDoubles(row_buf).status());
  }
  std::cout << "workload: " << rows << " rows over "
            << table->heap_meta().page_count << " heap pages\n";

  // Worst case for responsiveness: a predicate that never prunes and
  // never matches, so the scan grinds through every page.
  Predicate all;
  all.AndResidual([](const char*) { return false; });
  auto sink = [](const char*, RecordId) -> Status { return Status::OK(); };

  // -- cancellation latency ------------------------------------------
  std::vector<double> cancel_ms;
  for (int r = 0; r < reps; ++r) {
    CancellationSource source;
    QueryContext ctx;
    ctx.cancel = source.token();
    SeqScanOptions scan_options;
    scan_options.context = &ctx;
    std::atomic<bool> started{false};
    std::atomic<bool> cancel_issued{false};
    std::atomic<double> returned_at{0.0};
    Status seen;
    std::thread scanner([&] {
      // The first row parks the scan until Cancel() has been issued, so
      // the scan can never outrun the cancel on a small table; every row
      // after that flows freely and the next page-boundary check fires.
      Predicate counting;
      counting.AndResidual([&started, &cancel_issued](const char*) {
        started.store(true, std::memory_order_release);
        while (!cancel_issued.load(std::memory_order_acquire)) {
          std::this_thread::yield();
        }
        return false;
      });
      seen = SeqScan(*table, counting, sink, nullptr, scan_options);
      returned_at.store(NowSeconds(), std::memory_order_relaxed);
    });
    while (!started.load(std::memory_order_acquire)) {
      std::this_thread::yield();
    }
    source.Cancel();
    const double cancelled_at = NowSeconds();
    cancel_issued.store(true, std::memory_order_release);
    scanner.join();
    SEGDIFF_CHECK(seen.IsCancelled()) << seen.ToString();
    cancel_ms.push_back((returned_at.load() - cancelled_at) * 1e3);
  }

  // -- deadline overshoot --------------------------------------------
  constexpr double kDeadlineMs = 5.0;
  std::vector<double> overshoot_ms;
  for (int r = 0; r < reps; ++r) {
    QueryContext ctx;
    ctx.deadline = Deadline::AfterMillis(static_cast<uint64_t>(kDeadlineMs));
    SeqScanOptions scan_options;
    scan_options.context = &ctx;
    const double start = NowSeconds();
    Status status = SeqScan(*table, all, sink, nullptr, scan_options);
    const double wall_ms = (NowSeconds() - start) * 1e3;
    // On a small/fast table the scan may finish inside the deadline.
    if (status.IsDeadlineExceeded()) {
      overshoot_ms.push_back(wall_ms - kDeadlineMs);
    }
  }

  // -- admission round trip ------------------------------------------
  AdmissionController controller;
  QueryContext plain_ctx;
  const int admit_iters = quick ? 10000 : 200000;
  const double admit_start = NowSeconds();
  for (int i = 0; i < admit_iters; ++i) {
    auto ticket = controller.Admit(plain_ctx);
    SEGDIFF_CHECK(ticket.ok());
  }
  const double admit_ns =
      (NowSeconds() - admit_start) / admit_iters * 1e9;

  // -- governed vs ungoverned scan overhead --------------------------
  double ungoverned_s = 0.0;
  double governed_s = 0.0;
  const int scan_reps = quick ? 2 : 5;
  for (int r = 0; r < scan_reps; ++r) {
    double start = NowSeconds();
    SEGDIFF_CHECK_OK(SeqScan(*table, all, sink, nullptr, SeqScanOptions{}));
    const double plain = NowSeconds() - start;

    CancellationSource source;  // live token + far deadline: checks run,
    QueryContext ctx;           // nothing ever fires
    ctx.cancel = source.token();
    ctx.deadline = Deadline::AfterMillis(3600 * 1000);
    SeqScanOptions governed_options;
    governed_options.context = &ctx;
    start = NowSeconds();
    SEGDIFF_CHECK_OK(SeqScan(*table, all, sink, nullptr, governed_options));
    const double governed = NowSeconds() - start;

    if (r == 0 || plain < ungoverned_s) ungoverned_s = plain;
    if (r == 0 || governed < governed_s) governed_s = governed;
  }
  const double overhead_pct =
      ungoverned_s > 0.0 ? (governed_s / ungoverned_s - 1.0) * 100.0 : 0.0;

  // -- 8 concurrent governed scans under a 50 ms deadline ------------
  constexpr int kConcurrent = 8;
  std::vector<std::thread> threads;
  std::atomic<int> terminal{0};
  std::vector<double> concurrent_ms(kConcurrent, 0.0);
  const double deadline_wall_start = NowSeconds();
  for (int t = 0; t < kConcurrent; ++t) {
    threads.emplace_back([&, t] {
      QueryContext ctx;
      ctx.deadline = Deadline::AfterMillis(50);
      SeqScanOptions scan_options;
      scan_options.context = &ctx;
      const double start = NowSeconds();
      Status status = SeqScan(*table, all, sink, nullptr, scan_options);
      concurrent_ms[static_cast<size_t>(t)] = (NowSeconds() - start) * 1e3;
      if (status.ok() || status.IsDeadlineExceeded()) {
        ++terminal;
      }
    });
  }
  for (std::thread& t : threads) t.join();
  const double concurrent_wall_ms =
      (NowSeconds() - deadline_wall_start) * 1e3;
  SEGDIFF_CHECK(terminal.load() == kConcurrent);
  const double concurrent_max_ms =
      *std::max_element(concurrent_ms.begin(), concurrent_ms.end());

  // -- report ---------------------------------------------------------
  PrintBanner(std::cout,
              "Query governance: responsiveness and overhead (" +
                  std::to_string(reps) + " reps)");
  TablePrinter printer({"metric", "value"});
  printer.AddRow({"cancel latency p50", Fmt(Percentile(cancel_ms, 50), 3) +
                                            " ms"});
  printer.AddRow({"cancel latency p99", Fmt(Percentile(cancel_ms, 99), 3) +
                                            " ms"});
  printer.AddRow({"deadline overshoot p50",
                  Fmt(Percentile(overshoot_ms, 50), 3) + " ms"});
  printer.AddRow({"deadline overshoot p99",
                  Fmt(Percentile(overshoot_ms, 99), 3) + " ms"});
  printer.AddRow({"admit+release", Fmt(admit_ns, 0) + " ns"});
  printer.AddRow({"governed scan overhead", Fmt(overhead_pct, 2) + " %"});
  printer.AddRow({"8x 50ms-deadline max", Fmt(concurrent_max_ms, 1) +
                                              " ms"});
  printer.Print(std::cout);
  std::cout << "governed overhead target: <= 2% (one atomic load per page; "
               "the deadline clock read is amortized over "
            << kDeadlineCheckPageInterval << " pages)\n";

  JsonValue root = JsonValue::Object();
  root.Set("bench", "governance");
  root.Set("rows", static_cast<int64_t>(rows));
  root.Set("reps", static_cast<int64_t>(reps));
  root.Set("cancel_latency_ms_p50", Percentile(cancel_ms, 50));
  root.Set("cancel_latency_ms_p99", Percentile(cancel_ms, 99));
  root.Set("deadline_overshoot_ms_p50", Percentile(overshoot_ms, 50));
  root.Set("deadline_overshoot_ms_p99", Percentile(overshoot_ms, 99));
  root.Set("deadline_samples",
           static_cast<int64_t>(overshoot_ms.size()));
  root.Set("admit_release_ns", admit_ns);
  root.Set("ungoverned_scan_s", ungoverned_s);
  root.Set("governed_scan_s", governed_s);
  root.Set("governed_overhead_pct", overhead_pct);
  root.Set("concurrent_queries", static_cast<int64_t>(kConcurrent));
  root.Set("concurrent_deadline_ms", 50.0);
  root.Set("concurrent_max_latency_ms", concurrent_max_ms);
  root.Set("concurrent_wall_ms", concurrent_wall_ms);
  const std::string json_path = BenchReportPath("BENCH_governance.json");
  if (WriteJsonFile(json_path, root)) {
    std::cout << "wrote " << json_path << "\n";
  } else {
    std::cout << "failed to write " << json_path << "\n";
  }

  db->reset();
  RemoveBenchDb(path);
  return 0;
}

}  // namespace
}  // namespace segdiff

int main(int argc, char** argv) {
  bool quick = false;
  for (int i = 1; i < argc; ++i) {
    quick |= std::string(argv[i]) == "--quick";
  }
  return segdiff::RunBench(quick);
}
