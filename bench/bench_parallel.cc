// Parallel query execution: wall-clock speedup of SearchOptions::
// num_threads at 1/2/4/8 threads over a >= 1M-row feature store.
//
// Three execution shapes are measured, warm-cache (the parallelism here
// is CPU-bound predicate evaluation, not IO):
//   exh/seq       one giant range query, scan partitioned by heap page
//   segdiff/seq   the paper's 9 point/line queries run concurrently
//   segdiff/fused per-table fused passes, each partitioned by heap page
//   segdiff/index 9 B+-tree range scans run concurrently
//
// Results additionally land in BENCH_parallel.json (threads ->
// wall-seconds, rows/s) so the perf trajectory is machine-readable.

#include <algorithm>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "benchutil/report.h"
#include "benchutil/workload.h"
#include "common/env.h"
#include "common/logging.h"
#include "segdiff/exh_index.h"
#include "segdiff/segdiff_index.h"

namespace segdiff {
namespace {

constexpr size_t kThreadCounts[] = {1, 2, 4, 8};

/// Best-of-N wall seconds for one search configuration.
template <typename SearchFn>
double TimeSearch(const SearchFn& search, int reps, SearchStats* stats) {
  double best = 0.0;
  for (int r = 0; r < reps; ++r) {
    SearchStats local;
    search(&local);
    if (r == 0 || local.seconds < best) {
      best = local.seconds;
      *stats = local;
    }
  }
  return best;
}

int RunBench(bool quick) {
  WorkloadConfig config = WorkloadConfig::FromEnv();
  // The acceptance target is a >= 1M-row store: 56 days of 5-minute
  // samples give ~1.5M Exh pair rows at the default 8h window. --quick
  // (the tier-1 bench smoke) instead runs a days-scale store once, just
  // to prove the binary executes end to end.
  config.num_days = quick ? std::min(config.num_days, 4)
                          : std::max(config.num_days, 56);
  const int reps =
      quick ? 1
            : static_cast<int>(GetEnvInt64("SEGDIFF_BENCH_QUERY_REPS", 3));
  auto series_or = MakeSmoothedBenchSeries(config);
  SEGDIFF_CHECK(series_or.ok()) << series_or.status().ToString();
  const Series& series = *series_or;

  const std::string exh_path = BenchDbPath("parallel_exh");
  ExhOptions exh_options;
  exh_options.window_s = PaperDefaults::kWindowS;
  exh_options.build_index = false;  // only the partitioned seq scan is timed
  exh_options.buffer_pool_pages = 32768;  // keep the whole store warm
  auto exh = ExhIndex::Open(exh_path, exh_options);
  SEGDIFF_CHECK(exh.ok()) << exh.status().ToString();
  SEGDIFF_CHECK_OK((*exh)->IngestSeries(series));

  const std::string seg_path = BenchDbPath("parallel_segdiff");
  SegDiffOptions seg_options;
  seg_options.eps = PaperDefaults::kEps;
  seg_options.window_s = PaperDefaults::kWindowS;
  seg_options.buffer_pool_pages = 32768;
  auto index = SegDiffIndex::Open(seg_path, seg_options);
  SEGDIFF_CHECK(index.ok()) << index.status().ToString();
  SEGDIFF_CHECK_OK((*index)->IngestSeries(series));

  const double T = PaperDefaults::kTSeconds;
  const double V = PaperDefaults::kVDegrees;
  const uint64_t exh_rows = (*exh)->GetSizes().feature_rows;
  const uint64_t seg_rows = (*index)->GetSizes().feature_rows;
  const unsigned hw_threads = std::thread::hardware_concurrency();
  std::cout << "workload: " << series.size() << " observations, "
            << exh_rows << " Exh pair rows, " << seg_rows
            << " SegDiff feature rows; " << hw_threads
            << " hardware threads\n";
  if (hw_threads <= 1) {
    std::cout << "NOTE: single-core machine — thread counts > 1 time-slice "
                 "one core, so speedup stays ~1.0x by construction.\n";
  }

  PrintBanner(std::cout,
              "Parallel query execution: wall time vs num_threads "
              "(warm cache, best of " +
                  std::to_string(reps) + ")");
  TablePrinter table({"index", "mode", "threads", "wall ms", "rows/s",
                      "speedup", "pairs"});
  JsonValue results = JsonValue::Array();

  struct Shape {
    const char* index;
    const char* mode;
    SearchOptions options;
  };
  std::vector<Shape> shapes;
  {
    SearchOptions seq;
    seq.mode = QueryMode::kSeqScan;
    shapes.push_back({"exh", "seq", seq});
    shapes.push_back({"segdiff", "seq", seq});
    SearchOptions fused = seq;
    fused.fused_scan = true;
    shapes.push_back({"segdiff", "fused", fused});
    SearchOptions idx;
    idx.mode = QueryMode::kIndexScan;
    shapes.push_back({"segdiff", "index", idx});
  }

  for (const Shape& shape : shapes) {
    double serial_seconds = 0.0;
    for (const size_t threads : kThreadCounts) {
      SearchOptions options = shape.options;
      options.num_threads = threads;
      SearchStats stats;
      uint64_t pairs = 0;
      const bool is_exh = std::string(shape.index) == "exh";
      const double seconds = TimeSearch(
          [&](SearchStats* s) {
            if (is_exh) {
              auto events = (*exh)->SearchDrops(T, V, options, s);
              SEGDIFF_CHECK(events.ok()) << events.status().ToString();
              pairs = events->size();
            } else {
              auto pairs_or = (*index)->SearchDrops(T, V, options, s);
              SEGDIFF_CHECK(pairs_or.ok()) << pairs_or.status().ToString();
              pairs = pairs_or->size();
            }
          },
          reps, &stats);
      if (threads == 1) {
        serial_seconds = seconds;
      }
      const uint64_t work_rows =
          stats.scan.rows_scanned + stats.scan.index_entries_scanned;
      const double rows_per_s =
          seconds > 0.0 ? static_cast<double>(work_rows) / seconds : 0.0;
      const double speedup =
          seconds > 0.0 ? serial_seconds / seconds : 0.0;
      table.AddRow({shape.index, shape.mode, std::to_string(threads),
                    Fmt(seconds * 1e3, 2), Fmt(rows_per_s / 1e6, 2) + "M",
                    Fmt(speedup, 2) + "x", std::to_string(pairs)});
      JsonValue row = JsonValue::Object();
      row.Set("index", shape.index);
      row.Set("mode", shape.mode);
      row.Set("threads", static_cast<int64_t>(threads));
      row.Set("seconds", seconds);
      row.Set("rows_scanned", static_cast<int64_t>(work_rows));
      row.Set("rows_per_s", rows_per_s);
      row.Set("speedup_vs_serial", speedup);
      row.Set("pairs_returned", static_cast<int64_t>(pairs));
      results.Append(std::move(row));
    }
  }
  table.Print(std::cout);
  std::cout << "expected shape: seq/fused scale with threads until "
               "memory bandwidth saturates (>= 2x at 4 threads); the 9 "
               "index scans are bounded by the largest single query.\n";

  JsonValue root = JsonValue::Object();
  root.Set("bench", "parallel");
  root.Set("observations", static_cast<int64_t>(series.size()));
  root.Set("exh_rows", static_cast<int64_t>(exh_rows));
  root.Set("segdiff_rows", static_cast<int64_t>(seg_rows));
  root.Set("reps", static_cast<int64_t>(reps));
  root.Set("hardware_threads", static_cast<int64_t>(hw_threads));
  root.Set("results", std::move(results));
  const std::string json_path = BenchReportPath("BENCH_parallel.json");
  if (WriteJsonFile(json_path, root)) {
    std::cout << "wrote " << json_path << "\n";
  } else {
    std::cout << "failed to write " << json_path << "\n";
  }

  RemoveBenchDb(exh_path);
  RemoveBenchDb(seg_path);
  return 0;
}

}  // namespace
}  // namespace segdiff

int main(int argc, char** argv) {
  bool quick = false;
  for (int i = 1; i < argc; ++i) {
    quick |= std::string(argv[i]) == "--quick";
  }
  return segdiff::RunBench(quick);
}
