// Zone-map pruning + batched-kernel ablation for sequential scans.
//
// Three execution modes run the same rare-event conjunction
// (dt <= T AND dv <= V, < 1% selectivity) over the same drop2-shaped
// feature table:
//   row    row-at-a-time Predicate::Matches     (the pre-zone-map path)
//   batch  selection-bitmap kernel, no pruning  (kernel contribution)
//   full   kernel + zone-map page pruning       (the default fast path)
// The workload models the paper's drop queries: matching rows are
// temporally clustered (a cold event spans consecutive segments, hence
// consecutive heap pages), so most pages' per-page [min, max] dv ranges
// exclude V entirely and the zone maps skip them wholesale.
//
// Results land in BENCH_scan.json: per-mode wall seconds, rows/s,
// pages scanned vs pruned, and the speedup of each layer over the
// row-at-a-time baseline — the acceptance target is >= 2x end to end.
//
//   bench_scan [--quick]    (--quick: small store + 1 rep, smoke only)
// Env: SEGDIFF_BENCH_SCAN_ROWS, SEGDIFF_BENCH_QUERY_REPS,
//      SEGDIFF_SCAN_KERNEL=scalar|sse2|avx2.

#include <chrono>
#include <iostream>
#include <string>
#include <vector>

#include "benchutil/report.h"
#include "benchutil/workload.h"
#include "common/env.h"
#include "common/logging.h"
#include "common/random.h"
#include "query/executor.h"
#include "query/scan_kernel.h"
#include "storage/db.h"

namespace segdiff {
namespace {

constexpr double kT = 3600.0;  // dt bound: 1 h
constexpr double kV = -3.0;    // dv bound: -3 degC

double NowSeconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

struct ModeResult {
  const char* name;
  double seconds = 0.0;
  uint64_t matched = 0;
  ScanStats stats;
};

int RunBench(bool quick) {
  const uint64_t rows = static_cast<uint64_t>(GetEnvInt64(
      "SEGDIFF_BENCH_SCAN_ROWS", quick ? 50 * 1000 : 1000 * 1000));
  const int reps = quick ? 1
                         : static_cast<int>(GetEnvInt64(
                               "SEGDIFF_BENCH_QUERY_REPS", 3));

  const std::string path = BenchDbPath("scan");
  DatabaseOptions options;
  options.buffer_pool_pages = 32768;  // keep the whole store warm
  auto db = Database::Open(path, options);
  SEGDIFF_CHECK(db.ok()) << db.status().ToString();

  // drop2-shaped schema: [dt1, dv1, dt2, dv2, t_d, t_c, t_b].
  std::vector<Column> columns;
  for (const char* name : {"dt1", "dv1", "dt2", "dv2", "t_d", "t_c", "t_b"}) {
    columns.push_back(Column{name, ColumnType::kDouble});
  }
  auto schema = TableSchema::Create(std::move(columns));
  SEGDIFF_CHECK(schema.ok());
  auto table_or = (*db)->CreateTable("drop2", std::move(schema).value());
  SEGDIFF_CHECK(table_or.ok()) << table_or.status().ToString();
  Table* table = *table_or;

  // 0.5% of rows form one contiguous event band whose dv falls below V;
  // everything else is background noise well above it. Contiguity is the
  // realistic part: a cold event's feature rows are extracted from
  // consecutive segment pairs and land on consecutive heap pages.
  const uint64_t event_rows = std::max<uint64_t>(rows / 200, 1);
  const uint64_t event_start = rows / 2;
  Rng rng(20080325);
  std::vector<double> row_buf(7, 0.0);
  uint64_t expected_matches = 0;
  for (uint64_t i = 0; i < rows; ++i) {
    const bool event = i >= event_start && i < event_start + event_rows;
    row_buf[0] = event ? rng.Uniform(600.0, 3000.0)       // dt1 <= T
                       : rng.Uniform(0.0, 8.0 * 3600.0);
    row_buf[1] = event ? rng.Uniform(-8.0, -3.2)          // dv1 <= V
                       : rng.Uniform(-2.0, 2.0);
    for (size_t c = 2; c < 7; ++c) {
      row_buf[c] = rng.Uniform(0.0, 8.0 * 3600.0);
    }
    expected_matches += event ? 1 : 0;
    SEGDIFF_CHECK_OK(table->InsertDoubles(row_buf).status());
  }

  Predicate predicate;
  predicate.And(0, CmpOp::kLe, kT).And(1, CmpOp::kLe, kV);

  const uint64_t pages = table->heap_meta().page_count;
  const double selectivity =
      static_cast<double>(expected_matches) / static_cast<double>(rows);
  std::cout << "workload: " << rows << " rows over " << pages
            << " heap pages, " << expected_matches << " matches ("
            << Fmt(selectivity * 100.0, 3) << "% selectivity), kernel="
            << ActiveScanKernelName() << "\n";

  struct Mode {
    const char* name;
    SeqScanOptions options;
  };
  const Mode modes[] = {
      {"row", SeqScanOptions{/*batch=*/false, /*prune=*/false}},
      {"batch", SeqScanOptions{/*batch=*/true, /*prune=*/false}},
      {"full", SeqScanOptions{/*batch=*/true, /*prune=*/true}},
  };

  std::vector<ModeResult> results;
  for (const Mode& mode : modes) {
    ModeResult result;
    result.name = mode.name;
    for (int r = 0; r < reps; ++r) {
      uint64_t matched = 0;
      ScanStats stats;
      auto count = [&matched](const char*, RecordId) -> Status {
        ++matched;
        return Status::OK();
      };
      const double start = NowSeconds();
      SEGDIFF_CHECK_OK(
          SeqScan(*table, predicate, count, &stats, mode.options));
      const double seconds = NowSeconds() - start;
      SEGDIFF_CHECK(matched == expected_matches)
          << mode.name << ": " << matched << " != " << expected_matches;
      if (r == 0 || seconds < result.seconds) {
        result.seconds = seconds;
        result.matched = matched;
        result.stats = stats;
      }
    }
    results.push_back(result);
  }

  const double row_seconds = results[0].seconds;
  PrintBanner(std::cout,
              "Sequential-scan ablation: row vs kernel vs kernel+pruning "
              "(warm cache, best of " +
                  std::to_string(reps) + ")");
  TablePrinter printer({"mode", "wall ms", "rows/s", "pages scanned",
                        "pages pruned", "speedup"});
  JsonValue rows_json = JsonValue::Array();
  for (const ModeResult& result : results) {
    const double rows_per_s =
        result.seconds > 0.0 ? static_cast<double>(rows) / result.seconds
                             : 0.0;
    const double speedup =
        result.seconds > 0.0 ? row_seconds / result.seconds : 0.0;
    printer.AddRow({result.name, Fmt(result.seconds * 1e3, 2),
                    Fmt(rows_per_s / 1e6, 2) + "M",
                    std::to_string(result.stats.pages_scanned),
                    std::to_string(result.stats.pages_pruned),
                    Fmt(speedup, 2) + "x"});
    JsonValue row = JsonValue::Object();
    row.Set("mode", result.name);
    row.Set("seconds", result.seconds);
    row.Set("rows_per_s", rows_per_s);
    row.Set("rows_matched", static_cast<int64_t>(result.matched));
    row.Set("pages_scanned",
            static_cast<int64_t>(result.stats.pages_scanned));
    row.Set("pages_pruned", static_cast<int64_t>(result.stats.pages_pruned));
    row.Set("speedup_vs_row", speedup);
    rows_json.Append(std::move(row));
  }
  printer.Print(std::cout);

  const double kernel_speedup =
      results[1].seconds > 0.0 ? row_seconds / results[1].seconds : 0.0;
  const double pruning_speedup =
      results[2].seconds > 0.0 ? results[1].seconds / results[2].seconds
                               : 0.0;
  const double total_speedup =
      results[2].seconds > 0.0 ? row_seconds / results[2].seconds : 0.0;
  std::cout << "kernel contribution:  " << Fmt(kernel_speedup, 2)
            << "x (row -> batch)\n"
            << "pruning contribution: " << Fmt(pruning_speedup, 2)
            << "x (batch -> full)\n"
            << "total:                " << Fmt(total_speedup, 2)
            << "x (target >= 2x at < 1% selectivity)\n";

  JsonValue root = JsonValue::Object();
  root.Set("bench", "scan");
  root.Set("rows", static_cast<int64_t>(rows));
  root.Set("pages", static_cast<int64_t>(pages));
  root.Set("selectivity", selectivity);
  root.Set("reps", static_cast<int64_t>(reps));
  root.Set("kernel", ActiveScanKernelName());
  root.Set("kernel_speedup", kernel_speedup);
  root.Set("pruning_speedup", pruning_speedup);
  root.Set("total_speedup", total_speedup);
  root.Set("results", std::move(rows_json));
  const std::string json_path = "BENCH_scan.json";
  if (WriteJsonFile(json_path, root)) {
    std::cout << "wrote " << json_path << "\n";
  } else {
    std::cout << "failed to write " << json_path << "\n";
  }

  db->reset();  // close before removing the file
  RemoveBenchDb(path);
  return 0;
}

}  // namespace
}  // namespace segdiff

int main(int argc, char** argv) {
  bool quick = false;
  for (int i = 1; i < argc; ++i) {
    quick |= std::string(argv[i]) == "--quick";
  }
  return segdiff::RunBench(quick);
}
