// Zone-map pruning + batched-kernel ablation for sequential scans.
//
// Three execution modes run the same rare-event conjunction
// (dt <= T AND dv <= V, < 1% selectivity) over the same drop2-shaped
// feature table:
//   row    row-at-a-time Predicate::Matches     (the pre-zone-map path)
//   batch  selection-bitmap kernel, no pruning  (kernel contribution)
//   full   kernel + zone-map page pruning       (the default fast path)
// The workload models the paper's drop queries: matching rows are
// temporally clustered (a cold event spans consecutive segments, hence
// consecutive heap pages), so most pages' per-page [min, max] dv ranges
// exclude V entirely and the zone maps skip them wholesale.
//
// Results land in BENCH_scan.json: per-mode wall seconds, rows/s,
// pages scanned vs pruned, and the speedup of each layer over the
// row-at-a-time baseline — the acceptance target is >= 2x end to end.
//
//   bench_scan [--quick]    (--quick: small store + 1 rep, smoke only)
// Env: SEGDIFF_BENCH_SCAN_ROWS, SEGDIFF_BENCH_QUERY_REPS,
//      SEGDIFF_SCAN_KERNEL=scalar|sse2|avx2.

#include <chrono>
#include <cmath>
#include <iostream>
#include <string>
#include <vector>

#include "benchutil/report.h"
#include "benchutil/workload.h"
#include "common/env.h"
#include "common/logging.h"
#include "common/random.h"
#include "query/executor.h"
#include "query/scan_kernel.h"
#include "storage/db.h"

namespace segdiff {
namespace {

constexpr double kT = 3600.0;  // dt bound: 1 h
constexpr double kV = -3.0;    // dv bound: -3 degC

double NowSeconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

struct ModeResult {
  const char* name;
  double seconds = 0.0;
  uint64_t matched = 0;
  ScanStats stats;
};

int RunBench(bool quick) {
  const uint64_t rows = static_cast<uint64_t>(GetEnvInt64(
      "SEGDIFF_BENCH_SCAN_ROWS", quick ? 50 * 1000 : 1000 * 1000));
  const int reps = quick ? 1
                         : static_cast<int>(GetEnvInt64(
                               "SEGDIFF_BENCH_QUERY_REPS", 3));

  const std::string path = BenchDbPath("scan");
  DatabaseOptions options;
  options.buffer_pool_pages = 32768;  // keep the whole store warm
  auto db = Database::Open(path, options);
  SEGDIFF_CHECK(db.ok()) << db.status().ToString();

  // drop2-shaped schema: [dt1, dv1, dt2, dv2, t_d, t_c, t_b].
  std::vector<Column> columns;
  for (const char* name : {"dt1", "dv1", "dt2", "dv2", "t_d", "t_c", "t_b"}) {
    columns.push_back(Column{name, ColumnType::kDouble});
  }
  auto schema = TableSchema::Create(std::move(columns));
  SEGDIFF_CHECK(schema.ok());
  auto table_or = (*db)->CreateTable("drop2", std::move(schema).value());
  SEGDIFF_CHECK(table_or.ok()) << table_or.status().ToString();
  Table* table = *table_or;

  // 0.5% of rows form one contiguous event band whose dv falls below V;
  // everything else is background noise well above it. Contiguity is the
  // realistic part: a cold event's feature rows are extracted from
  // consecutive segment pairs and land on consecutive heap pages. The
  // data is sensor-shaped, like what the extractor actually emits:
  // durations in whole seconds, temperature deltas on a 0.01 degC grid,
  // and monotone event times — the decimal/monotone structure the
  // columnar FOR/delta encodings are built for.
  auto q0 = [](double v) { return std::round(v); };  // whole seconds
  auto q2 = [](double v) {                           // 0.01-unit grid
    double r = std::round(v * 100.0) / 100.0;
    if (r == 0.0) r = 0.0;  // never emit -0.0 (off the decimal grid)
    return r;
  };
  const uint64_t event_rows = std::max<uint64_t>(rows / 200, 1);
  const uint64_t event_start = rows / 2;
  Rng rng(20080325);
  std::vector<double> row_buf(7, 0.0);
  uint64_t expected_matches = 0;
  double t_base = 0.0;
  for (uint64_t i = 0; i < rows; ++i) {
    const bool event = i >= event_start && i < event_start + event_rows;
    row_buf[0] = q0(event ? rng.Uniform(600.0, 3000.0)     // dt1 <= T
                          : rng.Uniform(0.0, 8.0 * 3600.0));
    row_buf[1] = q2(event ? rng.Uniform(-8.0, -3.2)        // dv1 <= V
                          : rng.Uniform(-2.0, 2.0));
    row_buf[2] = q0(rng.Uniform(0.0, 8.0 * 3600.0));
    row_buf[3] = q2(rng.Uniform(-2.0, 2.0));
    t_base += rng.Uniform(30.0, 90.0);
    row_buf[4] = q0(t_base);                                // t_d monotone
    row_buf[5] = q0(t_base + rng.Uniform(0.0, 600.0));      // t_c
    row_buf[6] = q0(t_base + rng.Uniform(600.0, 1200.0));   // t_b
    expected_matches += event ? 1 : 0;
    SEGDIFF_CHECK_OK(table->InsertDoubles(row_buf).status());
  }

  Predicate predicate;
  predicate.And(0, CmpOp::kLe, kT).And(1, CmpOp::kLe, kV);

  const uint64_t pages = table->heap_meta().page_count;
  const double selectivity =
      static_cast<double>(expected_matches) / static_cast<double>(rows);
  std::cout << "workload: " << rows << " rows over " << pages
            << " heap pages, " << expected_matches << " matches ("
            << Fmt(selectivity * 100.0, 3) << "% selectivity), kernel="
            << ActiveScanKernelName() << "\n";

  struct Mode {
    const char* name;
    SeqScanOptions options;
  };
  const Mode modes[] = {
      {"row", SeqScanOptions{/*batch=*/false, /*prune=*/false}},
      {"batch", SeqScanOptions{/*batch=*/true, /*prune=*/false}},
      {"full", SeqScanOptions{/*batch=*/true, /*prune=*/true}},
  };

  std::vector<ModeResult> results;
  for (const Mode& mode : modes) {
    ModeResult result;
    result.name = mode.name;
    for (int r = 0; r < reps; ++r) {
      uint64_t matched = 0;
      ScanStats stats;
      auto count = [&matched](const char*, RecordId) -> Status {
        ++matched;
        return Status::OK();
      };
      const double start = NowSeconds();
      SEGDIFF_CHECK_OK(
          SeqScan(*table, predicate, count, &stats, mode.options));
      const double seconds = NowSeconds() - start;
      SEGDIFF_CHECK(matched == expected_matches)
          << mode.name << ": " << matched << " != " << expected_matches;
      if (r == 0 || seconds < result.seconds) {
        result.seconds = seconds;
        result.matched = matched;
        result.stats = stats;
      }
    }
    results.push_back(result);
  }

  const double row_seconds = results[0].seconds;
  PrintBanner(std::cout,
              "Sequential-scan ablation: row vs kernel vs kernel+pruning "
              "(warm cache, best of " +
                  std::to_string(reps) + ")");
  TablePrinter printer({"mode", "wall ms", "rows/s", "pages scanned",
                        "pages pruned", "speedup"});
  JsonValue rows_json = JsonValue::Array();
  for (const ModeResult& result : results) {
    const double rows_per_s =
        result.seconds > 0.0 ? static_cast<double>(rows) / result.seconds
                             : 0.0;
    const double speedup =
        result.seconds > 0.0 ? row_seconds / result.seconds : 0.0;
    printer.AddRow({result.name, Fmt(result.seconds * 1e3, 2),
                    Fmt(rows_per_s / 1e6, 2) + "M",
                    std::to_string(result.stats.pages_scanned),
                    std::to_string(result.stats.pages_pruned),
                    Fmt(speedup, 2) + "x"});
    JsonValue row = JsonValue::Object();
    row.Set("mode", result.name);
    row.Set("seconds", result.seconds);
    row.Set("rows_per_s", rows_per_s);
    row.Set("rows_matched", static_cast<int64_t>(result.matched));
    row.Set("pages_scanned",
            static_cast<int64_t>(result.stats.pages_scanned));
    row.Set("pages_pruned", static_cast<int64_t>(result.stats.pages_pruned));
    row.Set("speedup_vs_row", speedup);
    rows_json.Append(std::move(row));
  }
  printer.Print(std::cout);

  const double kernel_speedup =
      results[1].seconds > 0.0 ? row_seconds / results[1].seconds : 0.0;
  const double pruning_speedup =
      results[2].seconds > 0.0 ? results[1].seconds / results[2].seconds
                               : 0.0;
  const double total_speedup =
      results[2].seconds > 0.0 ? row_seconds / results[2].seconds : 0.0;
  std::cout << "kernel contribution:  " << Fmt(kernel_speedup, 2)
            << "x (row -> batch)\n"
            << "pruning contribution: " << Fmt(pruning_speedup, 2)
            << "x (batch -> full)\n"
            << "total:                " << Fmt(total_speedup, 2)
            << "x (target >= 2x at < 1% selectivity)\n";

  // ------------------------------------------------------------------
  // Columnar section: compact the store (row pages -> compressed
  // columnar segments) and measure the full-selectivity count scan —
  // the shape the related work's standing queries reduce to — against
  // the row format. Count-only scans (null callback) on both sides so
  // the comparison is decode throughput, not callback overhead.
  SEGDIFF_CHECK_OK((*db)->Checkpoint());
  const uint64_t row_bytes = (*db)->pager()->FileSizeBytes();
  const std::string columnar_path = BenchDbPath("scan_columnar");
  SEGDIFF_CHECK_OK((*db)->CompactInto(columnar_path));
  auto cdb = Database::Open(columnar_path, DatabaseOptions{options});
  SEGDIFF_CHECK(cdb.ok()) << cdb.status().ToString();
  auto ctable_or = (*cdb)->GetTable("drop2");
  SEGDIFF_CHECK(ctable_or.ok());
  Table* ctable = *ctable_or;
  const uint64_t columnar_bytes = (*cdb)->pager()->FileSizeBytes();
  const double size_ratio =
      row_bytes > 0
          ? static_cast<double>(columnar_bytes) / static_cast<double>(row_bytes)
          : 0.0;

  Predicate full_predicate;
  full_predicate.And(0, CmpOp::kGe, -1.0);  // matches every row

  const SeqScanOptions fast{/*batch=*/true, /*prune=*/true};
  auto count_scan = [&](const Table& t, const Predicate& p) {
    double best = 0.0;
    uint64_t matched = 0;
    {  // warm the buffer pool so both formats are timed from cache
      ScanStats warm;
      SEGDIFF_CHECK_OK(SeqScan(t, p, RowCallback(), &warm, fast));
    }
    for (int r = 0; r < reps; ++r) {
      ScanStats stats;
      const double start = NowSeconds();
      SEGDIFF_CHECK_OK(SeqScan(t, p, RowCallback(), &stats, fast));
      const double seconds = NowSeconds() - start;
      if (r == 0 || seconds < best) best = seconds;
      matched = stats.rows_matched;
    }
    return std::make_pair(best, matched);
  };

  const auto [row_full_s, row_full_matched] = count_scan(*table, predicate);
  SEGDIFF_CHECK(row_full_matched == expected_matches);
  const auto [row_all_s, row_all_matched] = count_scan(*table, full_predicate);
  SEGDIFF_CHECK(row_all_matched == rows);
  const auto [col_full_s, col_full_matched] = count_scan(*ctable, predicate);
  SEGDIFF_CHECK(col_full_matched == expected_matches)
      << "columnar rare-event count diverged: " << col_full_matched;
  const auto [col_all_s, col_all_matched] = count_scan(*ctable, full_predicate);
  SEGDIFF_CHECK(col_all_matched == rows)
      << "columnar full count diverged: " << col_all_matched;

  const double columnar_speedup =
      col_all_s > 0.0 ? row_all_s / col_all_s : 0.0;
  const double columnar_rare_speedup =
      col_full_s > 0.0 ? row_full_s / col_full_s : 0.0;
  PrintBanner(std::cout,
              "Columnar vs row format (count-only scans, best of " +
                  std::to_string(reps) + ")");
  TablePrinter cprinter({"workload", "row ms", "columnar ms", "speedup"});
  cprinter.AddRow({"full selectivity", Fmt(row_all_s * 1e3, 2),
                   Fmt(col_all_s * 1e3, 2), Fmt(columnar_speedup, 2) + "x"});
  cprinter.AddRow({"rare event (<1%)", Fmt(row_full_s * 1e3, 2),
                   Fmt(col_full_s * 1e3, 2),
                   Fmt(columnar_rare_speedup, 2) + "x"});
  cprinter.Print(std::cout);
  std::cout << "store size: " << row_bytes << " -> " << columnar_bytes
            << " bytes (" << Fmt(size_ratio, 3)
            << "x, target <= 0.5x)\n"
            << "columnar full-selectivity speedup: "
            << Fmt(columnar_speedup, 2) << "x (target >= 3x)\n";

  JsonValue root = JsonValue::Object();
  root.Set("bench", "scan");
  root.Set("rows", static_cast<int64_t>(rows));
  root.Set("pages", static_cast<int64_t>(pages));
  root.Set("selectivity", selectivity);
  root.Set("reps", static_cast<int64_t>(reps));
  root.Set("kernel", ActiveScanKernelName());
  root.Set("kernel_speedup", kernel_speedup);
  root.Set("pruning_speedup", pruning_speedup);
  root.Set("total_speedup", total_speedup);
  root.Set("results", std::move(rows_json));
  JsonValue columnar_json = JsonValue::Object();
  columnar_json.Set("row_bytes", static_cast<int64_t>(row_bytes));
  columnar_json.Set("columnar_bytes", static_cast<int64_t>(columnar_bytes));
  columnar_json.Set("size_ratio", size_ratio);
  columnar_json.Set("full_selectivity_row_seconds", row_all_s);
  columnar_json.Set("full_selectivity_columnar_seconds", col_all_s);
  columnar_json.Set("full_selectivity_speedup", columnar_speedup);
  columnar_json.Set("rare_event_row_seconds", row_full_s);
  columnar_json.Set("rare_event_columnar_seconds", col_full_s);
  columnar_json.Set("rare_event_speedup", columnar_rare_speedup);
  root.Set("columnar", std::move(columnar_json));
  const std::string json_path = BenchReportPath("BENCH_scan.json");
  if (WriteJsonFile(json_path, root)) {
    std::cout << "wrote " << json_path << "\n";
  } else {
    std::cout << "failed to write " << json_path << "\n";
  }

  db->reset();  // close before removing the file
  cdb->reset();
  RemoveBenchDb(path);
  RemoveBenchDb(columnar_path);
  return 0;
}

}  // namespace
}  // namespace segdiff

int main(int argc, char** argv) {
  bool quick = false;
  for (int i = 1; i < argc; ++i) {
    quick |= std::string(argv[i]) == "--quick";
  }
  return segdiff::RunBench(quick);
}
