// Ablations of the paper's design decisions (not figures in the paper,
// but the knobs its Sections 4-5 argue for):
//   A. Corner reduction: storage with frontier corners vs all 4 corners,
//      and our queryable row layout (2k+3 cols) vs the paper's c2 = k+4.
//   B. Self pairs: rows added by within-segment event coverage.
//   C. Segmentation algorithm: sliding-window vs bottom-up r.
//   D. Query decomposition: per-corner range queries vs fused single
//      scan per table.
//   E. Planner: does kAuto pick the faster path across the query space?

#include <functional>
#include <iostream>

#include "benchutil/report.h"
#include "benchutil/workload.h"
#include "common/logging.h"
#include "feature/extractor.h"
#include "feature/schema.h"
#include "segdiff/segdiff_index.h"
#include "segment/bottom_up.h"
#include "ts/smoothing.h"
#include "segment/sliding_window.h"

namespace segdiff {
namespace {

int RunBench() {
  const WorkloadConfig config = WorkloadConfig::FromEnv();
  auto series_or = MakeSmoothedBenchSeries(config);
  SEGDIFF_CHECK(series_or.ok()) << series_or.status().ToString();
  const Series& series = *series_or;
  const double eps = PaperDefaults::kEps;
  const double w = PaperDefaults::kWindowS;
  std::cout << "workload: " << series.size() << " observations, eps=" << eps
            << ", w=" << w / 3600 << "h\n";

  // --- A: corner reduction storage accounting ---------------------------
  auto pla = SegmentSeriesWithTolerance(series, eps);
  SEGDIFF_CHECK(pla.ok());
  ExtractorOptions ex_options;
  ex_options.eps = eps;
  ex_options.window_s = w;
  ExtractorStats stats;
  uint64_t cols_ours = 0;
  uint64_t cols_paper = 0;
  uint64_t rows = 0;
  SEGDIFF_CHECK_OK(ExtractFeatures(
      *pla, ex_options,
      [&](const PairFeatures& row) {
        cols_ours += FeatureColumns(row.corners.count);
        cols_paper += PaperFeatureColumns(row.corners.count);
        ++rows;
        return Status::OK();
      },
      &stats));
  // All-4-corner strawman: every emitted row keeps 4 corners.
  const uint64_t cols_all4 = rows * FeatureColumns(4);
  PrintBanner(std::cout, "A: corner-reduction storage (columns x rows)");
  TablePrinter a({"scheme", "double columns", "vs all-4-corners"});
  a.AddRow({"all 4 corners", std::to_string(cols_all4), "1.00"});
  a.AddRow({"frontier corners, our layout (2k+3)", std::to_string(cols_ours),
            Fmt(static_cast<double>(cols_ours) / cols_all4, 2)});
  a.AddRow({"frontier corners, paper layout (k+4)",
            std::to_string(cols_paper),
            Fmt(static_cast<double>(cols_paper) / cols_all4, 2)});
  a.Print(std::cout);

  // --- B: self pairs -----------------------------------------------------
  ExtractorOptions no_self = ex_options;
  no_self.include_self_pairs = false;
  ExtractorStats no_self_stats;
  uint64_t rows_no_self = 0;
  SEGDIFF_CHECK_OK(ExtractFeatures(
      *pla, no_self,
      [&](const PairFeatures&) {
        ++rows_no_self;
        return Status::OK();
      },
      &no_self_stats));
  PrintBanner(std::cout, "B: self-pair coverage cost");
  std::cout << "rows with self pairs:    " << rows << "\n"
            << "rows without self pairs: " << rows_no_self << " ("
            << Fmt(100.0 * (rows - rows_no_self) / rows, 1)
            << "% of rows buy within-segment no-miss coverage)\n";

  // --- C: segmentation algorithm -----------------------------------------
  PrintBanner(std::cout, "C: sliding-window (online) vs bottom-up (offline)");
  TablePrinter c({"eps", "sliding-window r", "bottom-up r"});
  for (double e : {0.1, 0.2, 0.4}) {
    auto sliding = SegmentSeriesWithTolerance(series, e);
    SegmentationOptions bu;
    bu.max_error = e / 2.0;
    auto bottom_up = BottomUpSegment(series, bu);
    SEGDIFF_CHECK(sliding.ok());
    SEGDIFF_CHECK(bottom_up.ok());
    c.AddRow({Fmt(e, 1), Fmt(sliding->CompressionRate(series.size()), 2),
              Fmt(bottom_up->CompressionRate(series.size()), 2)});
  }
  c.Print(std::cout);

  // --- F: preprocessing (the paper smooths "with robust weights") --------
  {
    auto raw = MakeBenchSeries(config);
    SEGDIFF_CHECK(raw.ok());
    auto hampel_only = HampelFilter(raw->series, HampelOptions{});
    SEGDIFF_CHECK(hampel_only.ok());
    PrintBanner(std::cout,
                "F: preprocessing ablation (compression rate at eps=0.2)");
    TablePrinter f({"preprocessing", "segments", "r"});
    auto add = [&](const char* label, const Series& series) {
      auto segmented = SegmentSeriesWithTolerance(series, eps);
      SEGDIFF_CHECK(segmented.ok());
      f.AddRow({label, std::to_string(segmented->size()),
                Fmt(segmented->CompressionRate(series.size()), 2)});
    };
    add("raw", raw->series);
    add("hampel only", *hampel_only);
    add("hampel + robust loess (paper)", series);
    f.Print(std::cout);
    std::cout << "robust smoothing is what makes piecewise-linear "
                 "compression effective on noisy sensor data.\n";
  }

  // --- D + E: query execution --------------------------------------------
  const std::string path = BenchDbPath("ablation_segdiff");
  SegDiffOptions options;
  options.eps = eps;
  options.window_s = w;
  auto index = SegDiffIndex::Open(path, options);
  SEGDIFF_CHECK(index.ok());
  SEGDIFF_CHECK_OK((*index)->IngestSeries(series));

  PrintBanner(std::cout,
              "D/E: per-corner queries vs fused scan vs index vs planner "
              "(warm cache, drop search)");
  TablePrinter d({"T (h)", "V", "per-query seq ms", "fused seq ms",
                  "index ms", "auto ms", "auto == best?"});
  for (double Th : {0.25, 1.0, 8.0}) {
    for (double V : {-1.0, -6.0, -12.0}) {
      const double T = Th * kHourSeconds;
      auto timed = [&](const SearchOptions& mode) {
        double best = 1e18;
        for (int rep = 0; rep < 4; ++rep) {  // first run warms the cache
          SearchStats st;
          SEGDIFF_CHECK((*index)->SearchDrops(T, V, mode, &st).ok());
          if (rep > 0) {
            best = std::min(best, st.seconds * 1e3);
          }
        }
        return best;
      };
      SearchOptions seq;
      SearchOptions fused;
      fused.fused_scan = true;
      SearchOptions idx;
      idx.mode = QueryMode::kIndexScan;
      SearchOptions automatic;
      automatic.mode = QueryMode::kAuto;
      const double t_seq = timed(seq);
      const double t_fused = timed(fused);
      const double t_idx = timed(idx);
      const double t_auto = timed(automatic);
      const double best = std::min(t_seq, t_idx);
      d.AddRow({Fmt(Th, 2), Fmt(V, 0), Fmt(t_seq, 3), Fmt(t_fused, 3),
                Fmt(t_idx, 3), Fmt(t_auto, 3),
                t_auto <= 2.0 * best ? "yes" : "NO"});
    }
  }
  d.Print(std::cout);
  RemoveBenchDb(path);
  return 0;
}

}  // namespace
}  // namespace segdiff

int main() { return segdiff::RunBench(); }
