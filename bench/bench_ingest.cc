// Ingest throughput: observations/second through the streaming pipeline
// (segmentation + Algorithm 1 + feature-table inserts), measured three
// ways:
//   batch       one IngestSeries call over the whole series
//   streaming   one AppendObservation call per observation + final flush
//   transect/N  one series per sensor, ingested concurrently on N threads
// The batch-vs-streaming delta is the per-call overhead of the unified
// observation-at-a-time path (the two produce byte-identical stores);
// the transect rows show per-sensor ingest parallelism.
//
// Results additionally land in BENCH_ingest.json.

#include <filesystem>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "benchutil/report.h"
#include "benchutil/workload.h"
#include "common/logging.h"
#include "common/stopwatch.h"
#include "segdiff/segdiff_index.h"
#include "segdiff/transect_index.h"

namespace segdiff {
namespace {

constexpr size_t kTransectThreads[] = {1, 2, 4, 8};
constexpr int kTransectSensors = 8;

SegDiffOptions StoreOptions() {
  SegDiffOptions options;
  options.eps = PaperDefaults::kEps;
  options.window_s = PaperDefaults::kWindowS;
  options.buffer_pool_pages = 32768;
  return options;
}

int RunBench() {
  WorkloadConfig config = WorkloadConfig::FromEnv();
  auto series_or = MakeSmoothedBenchSeries(config);
  SEGDIFF_CHECK(series_or.ok()) << series_or.status().ToString();
  const Series& series = *series_or;
  std::cout << "workload: " << series.size() << " observations ("
            << config.num_days << " days at " << config.sample_interval_s
            << " s), eps=" << PaperDefaults::kEps << "\n";

  PrintBanner(std::cout, "Ingest throughput: batch vs streaming vs "
                         "concurrent transect");
  TablePrinter table({"shape", "threads", "wall ms", "obs/s", "segments",
                      "feature rows"});
  JsonValue results = JsonValue::Array();

  auto add_row = [&](const std::string& shape, size_t threads,
                     double seconds, uint64_t observations,
                     uint64_t segments, uint64_t rows) {
    const double obs_per_s =
        seconds > 0.0 ? static_cast<double>(observations) / seconds : 0.0;
    table.AddRow({shape, std::to_string(threads), Fmt(seconds * 1e3, 1),
                  Fmt(obs_per_s / 1e3, 1) + "K", std::to_string(segments),
                  std::to_string(rows)});
    JsonValue row = JsonValue::Object();
    row.Set("shape", shape);
    row.Set("threads", static_cast<int64_t>(threads));
    row.Set("seconds", seconds);
    row.Set("observations", static_cast<int64_t>(observations));
    row.Set("obs_per_s", obs_per_s);
    row.Set("segments", static_cast<int64_t>(segments));
    row.Set("feature_rows", static_cast<int64_t>(rows));
    results.Append(std::move(row));
  };

  {
    const std::string path = BenchDbPath("ingest_batch");
    auto store = SegDiffIndex::Open(path, StoreOptions());
    SEGDIFF_CHECK(store.ok()) << store.status().ToString();
    Stopwatch watch;
    SEGDIFF_CHECK_OK((*store)->IngestSeries(series));
    const double seconds = watch.ElapsedSeconds();
    add_row("batch", 1, seconds, series.size(), (*store)->num_segments(),
            (*store)->GetSizes().feature_rows);
    store->reset();
    RemoveBenchDb(path);
  }

  {
    const std::string path = BenchDbPath("ingest_streaming");
    auto store = SegDiffIndex::Open(path, StoreOptions());
    SEGDIFF_CHECK(store.ok()) << store.status().ToString();
    Stopwatch watch;
    for (const Sample& sample : series) {
      SEGDIFF_CHECK_OK((*store)->AppendObservation(sample.t, sample.v));
    }
    SEGDIFF_CHECK_OK((*store)->FlushPending());
    const double seconds = watch.ElapsedSeconds();
    add_row("streaming", 1, seconds, series.size(),
            (*store)->num_segments(), (*store)->GetSizes().feature_rows);
    store->reset();
    RemoveBenchDb(path);
  }

  // Transect: same workload per sensor, scaled-down horizon so the
  // serial baseline stays in seconds.
  WorkloadConfig sensor_config = config;
  sensor_config.num_days = std::max(2, config.num_days / 2);
  std::vector<Series> all_series;
  uint64_t transect_observations = 0;
  for (int s = 0; s < kTransectSensors; ++s) {
    WorkloadConfig one = sensor_config;
    one.seed = sensor_config.seed + static_cast<uint64_t>(s);
    auto sensor_series = MakeSmoothedBenchSeries(one);
    SEGDIFF_CHECK(sensor_series.ok()) << sensor_series.status().ToString();
    transect_observations += sensor_series->size();
    all_series.push_back(std::move(sensor_series).value());
  }
  for (const size_t threads : kTransectThreads) {
    const std::string dir =
        BenchDbPath("ingest_transect_" + std::to_string(threads));
    auto transect =
        TransectIndex::Open(dir, kTransectSensors, StoreOptions());
    SEGDIFF_CHECK(transect.ok()) << transect.status().ToString();
    Stopwatch watch;
    SEGDIFF_CHECK_OK((*transect)->IngestAllSensors(all_series, threads));
    const double seconds = watch.ElapsedSeconds();
    auto sizes = (*transect)->GetSizes();
    SEGDIFF_CHECK(sizes.ok()) << sizes.status().ToString();
    uint64_t segments = 0;
    for (int s = 0; s < kTransectSensors; ++s) {
      segments += (*(*transect)->sensor(s))->num_segments();
    }
    add_row("transect", threads, seconds, transect_observations, segments,
            sizes->feature_rows);
    transect->reset();
    std::error_code ec;
    std::filesystem::remove_all(dir, ec);
  }
  table.Print(std::cout);
  std::cout << "expected shape: streaming within ~10% of batch (same "
               "pipeline, per-call overhead only); transect scales with "
               "threads until storage inserts saturate.\n";

  // Durable ingest: the cost of acknowledged-means-durable streaming.
  // Group-commit window 0 fsyncs inside every append (the upper bound);
  // wider windows batch appends into one fsync, and checkpoint-only
  // (wal=false) is the pre-WAL baseline that loses everything since the
  // last checkpoint in a crash. fsyncs/append is the batching factor.
  PrintBanner(std::cout,
              "Durable ingest: WAL group-commit windows vs checkpoint-only");
  TablePrinter wal_table({"mode", "wall ms", "obs/s", "wal fsyncs",
                          "fsyncs/append", "group commits"});
  JsonValue wal_results = JsonValue::Array();
  struct DurabilityMode {
    const char* name;
    bool wal;
    int64_t window_ms;
  };
  constexpr DurabilityMode kModes[] = {
      {"checkpoint-only", false, 0},
      {"wal window 0ms", true, 0},
      {"wal window 1ms", true, 1},
      {"wal window 5ms", true, 5},
  };
  for (const DurabilityMode& mode : kModes) {
    const std::string path = BenchDbPath("ingest_durable");
    SegDiffOptions options = StoreOptions();
    options.wal = mode.wal;
    options.wal_group_commit_ms = mode.window_ms;
    auto store = SegDiffIndex::Open(path, options);
    SEGDIFF_CHECK(store.ok()) << store.status().ToString();
    Stopwatch watch;
    for (const Sample& sample : series) {
      SEGDIFF_CHECK_OK((*store)->AppendObservation(sample.t, sample.v));
    }
    SEGDIFF_CHECK_OK((*store)->FlushPending());
    const double seconds = watch.ElapsedSeconds();
    const WalInfo info = (*store)->db()->GetWalInfo();
    const double obs_per_s =
        seconds > 0.0 ? static_cast<double>(series.size()) / seconds : 0.0;
    const double fsyncs_per_append =
        info.stats.appends > 0
            ? static_cast<double>(info.stats.fsyncs) /
                  static_cast<double>(info.stats.appends)
            : 0.0;
    wal_table.AddRow({mode.name, Fmt(seconds * 1e3, 1),
                      Fmt(obs_per_s / 1e3, 1) + "K",
                      std::to_string(info.stats.fsyncs),
                      Fmt(fsyncs_per_append, 3),
                      std::to_string(info.stats.group_commits)});
    JsonValue row = JsonValue::Object();
    row.Set("mode", std::string(mode.name));
    row.Set("wal", mode.wal);
    row.Set("group_commit_ms", mode.window_ms);
    row.Set("seconds", seconds);
    row.Set("observations", static_cast<int64_t>(series.size()));
    row.Set("obs_per_s", obs_per_s);
    row.Set("wal_appends", static_cast<int64_t>(info.stats.appends));
    row.Set("wal_fsyncs", static_cast<int64_t>(info.stats.fsyncs));
    row.Set("fsyncs_per_append", fsyncs_per_append);
    row.Set("group_commits", static_cast<int64_t>(info.stats.group_commits));
    row.Set("wal_bytes_written",
            static_cast<int64_t>(info.stats.bytes_written));
    wal_results.Append(std::move(row));
    store->reset();
    RemoveBenchDb(path);
  }
  wal_table.Print(std::cout);
  std::cout << "expected shape: window 0 pays ~1 fsync per append; wider "
               "windows amortize toward the checkpoint-only rate while "
               "keeping every acknowledged observation crash-durable.\n";

  JsonValue wal_root = JsonValue::Object();
  wal_root.Set("bench", "durability");
  wal_root.Set("observations", static_cast<int64_t>(series.size()));
  wal_root.Set("results", std::move(wal_results));
  const std::string wal_json_path = BenchReportPath("BENCH_durability.json");
  if (WriteJsonFile(wal_json_path, wal_root)) {
    std::cout << "wrote " << wal_json_path << "\n";
  } else {
    std::cout << "failed to write " << wal_json_path << "\n";
  }

  JsonValue root = JsonValue::Object();
  root.Set("bench", "ingest");
  root.Set("observations", static_cast<int64_t>(series.size()));
  root.Set("transect_sensors", static_cast<int64_t>(kTransectSensors));
  root.Set("transect_observations",
           static_cast<int64_t>(transect_observations));
  root.Set("hardware_threads",
           static_cast<int64_t>(std::thread::hardware_concurrency()));
  root.Set("results", std::move(results));
  const std::string json_path = BenchReportPath("BENCH_ingest.json");
  if (WriteJsonFile(json_path, root)) {
    std::cout << "wrote " << json_path << "\n";
  } else {
    std::cout << "failed to write " << json_path << "\n";
  }
  return 0;
}

}  // namespace
}  // namespace segdiff

int main() { return segdiff::RunBench(); }
