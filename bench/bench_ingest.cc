// Ingest throughput: observations/second through the streaming pipeline
// (segmentation + Algorithm 1 + feature-table inserts), measured three
// ways:
//   batch       one IngestSeries call over the whole series
//   streaming   one AppendObservation call per observation + final flush
//   transect/N  one series per sensor, ingested concurrently on N threads
// The batch-vs-streaming delta is the per-call overhead of the unified
// observation-at-a-time path (the two produce byte-identical stores);
// the transect rows show per-sensor ingest parallelism.
//
// Results additionally land in BENCH_ingest.json.

#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "benchutil/report.h"
#include "benchutil/workload.h"
#include "common/logging.h"
#include "common/stopwatch.h"
#include "segdiff/segdiff_index.h"
#include "segdiff/transect_index.h"

namespace segdiff {
namespace {

constexpr size_t kTransectThreads[] = {1, 2, 4, 8};
constexpr int kTransectSensors = 8;

SegDiffOptions StoreOptions() {
  SegDiffOptions options;
  options.eps = PaperDefaults::kEps;
  options.window_s = PaperDefaults::kWindowS;
  options.buffer_pool_pages = 32768;
  return options;
}

int RunBench() {
  WorkloadConfig config = WorkloadConfig::FromEnv();
  auto series_or = MakeSmoothedBenchSeries(config);
  SEGDIFF_CHECK(series_or.ok()) << series_or.status().ToString();
  const Series& series = *series_or;
  std::cout << "workload: " << series.size() << " observations ("
            << config.num_days << " days at " << config.sample_interval_s
            << " s), eps=" << PaperDefaults::kEps << "\n";

  PrintBanner(std::cout, "Ingest throughput: batch vs streaming vs "
                         "concurrent transect");
  TablePrinter table({"shape", "threads", "wall ms", "obs/s", "segments",
                      "feature rows"});
  JsonValue results = JsonValue::Array();

  auto add_row = [&](const std::string& shape, size_t threads,
                     double seconds, uint64_t observations,
                     uint64_t segments, uint64_t rows) {
    const double obs_per_s =
        seconds > 0.0 ? static_cast<double>(observations) / seconds : 0.0;
    table.AddRow({shape, std::to_string(threads), Fmt(seconds * 1e3, 1),
                  Fmt(obs_per_s / 1e3, 1) + "K", std::to_string(segments),
                  std::to_string(rows)});
    JsonValue row = JsonValue::Object();
    row.Set("shape", shape);
    row.Set("threads", static_cast<int64_t>(threads));
    row.Set("seconds", seconds);
    row.Set("observations", static_cast<int64_t>(observations));
    row.Set("obs_per_s", obs_per_s);
    row.Set("segments", static_cast<int64_t>(segments));
    row.Set("feature_rows", static_cast<int64_t>(rows));
    results.Append(std::move(row));
  };

  {
    const std::string path = BenchDbPath("ingest_batch");
    auto store = SegDiffIndex::Open(path, StoreOptions());
    SEGDIFF_CHECK(store.ok()) << store.status().ToString();
    Stopwatch watch;
    SEGDIFF_CHECK_OK((*store)->IngestSeries(series));
    const double seconds = watch.ElapsedSeconds();
    add_row("batch", 1, seconds, series.size(), (*store)->num_segments(),
            (*store)->GetSizes().feature_rows);
    store->reset();
    RemoveBenchDb(path);
  }

  {
    const std::string path = BenchDbPath("ingest_streaming");
    auto store = SegDiffIndex::Open(path, StoreOptions());
    SEGDIFF_CHECK(store.ok()) << store.status().ToString();
    Stopwatch watch;
    for (const Sample& sample : series) {
      SEGDIFF_CHECK_OK((*store)->AppendObservation(sample.t, sample.v));
    }
    SEGDIFF_CHECK_OK((*store)->FlushPending());
    const double seconds = watch.ElapsedSeconds();
    add_row("streaming", 1, seconds, series.size(),
            (*store)->num_segments(), (*store)->GetSizes().feature_rows);
    store->reset();
    RemoveBenchDb(path);
  }

  // Transect: same workload per sensor, scaled-down horizon so the
  // serial baseline stays in seconds.
  WorkloadConfig sensor_config = config;
  sensor_config.num_days = std::max(2, config.num_days / 2);
  std::vector<Series> all_series;
  uint64_t transect_observations = 0;
  for (int s = 0; s < kTransectSensors; ++s) {
    WorkloadConfig one = sensor_config;
    one.seed = sensor_config.seed + static_cast<uint64_t>(s);
    auto sensor_series = MakeSmoothedBenchSeries(one);
    SEGDIFF_CHECK(sensor_series.ok()) << sensor_series.status().ToString();
    transect_observations += sensor_series->size();
    all_series.push_back(std::move(sensor_series).value());
  }
  for (const size_t threads : kTransectThreads) {
    const std::string dir =
        BenchDbPath("ingest_transect_" + std::to_string(threads));
    auto transect =
        TransectIndex::Open(dir, kTransectSensors, StoreOptions());
    SEGDIFF_CHECK(transect.ok()) << transect.status().ToString();
    Stopwatch watch;
    SEGDIFF_CHECK_OK((*transect)->IngestAllSensors(all_series, threads));
    const double seconds = watch.ElapsedSeconds();
    const TransectSizes sizes = (*transect)->GetSizes();
    uint64_t segments = 0;
    for (int s = 0; s < kTransectSensors; ++s) {
      segments += (*(*transect)->sensor(s))->num_segments();
    }
    add_row("transect", threads, seconds, transect_observations, segments,
            sizes.feature_rows);
    transect->reset();
    for (int s = 0; s < kTransectSensors; ++s) {
      RemoveBenchDb(dir + "/sensor" + std::to_string(s) + ".db");
    }
  }
  table.Print(std::cout);
  std::cout << "expected shape: streaming within ~10% of batch (same "
               "pipeline, per-call overhead only); transect scales with "
               "threads until storage inserts saturate.\n";

  JsonValue root = JsonValue::Object();
  root.Set("bench", "ingest");
  root.Set("observations", static_cast<int64_t>(series.size()));
  root.Set("transect_sensors", static_cast<int64_t>(kTransectSensors));
  root.Set("transect_observations",
           static_cast<int64_t>(transect_observations));
  root.Set("hardware_threads",
           static_cast<int64_t>(std::thread::hardware_concurrency()));
  root.Set("results", std::move(results));
  const std::string json_path = BenchReportPath("BENCH_ingest.json");
  if (WriteJsonFile(json_path, root)) {
    std::cout << "wrote " << json_path << "\n";
  } else {
    std::cout << "failed to write " << json_path << "\n";
  }
  return 0;
}

}  // namespace
}  // namespace segdiff

int main() { return segdiff::RunBench(); }
