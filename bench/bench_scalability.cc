// Reproduces the scalability experiments (Section 6.3):
//   Figure 14: feature size with the number of observations n increased
//              (5 groups inserted incrementally; Exh measured for the
//               first 2 groups and extrapolated after, as in the paper)
//   Figure 15: sequential-scan time with n increased
//
// eps = 0.2, w = 8 h, default query.

#include <iostream>
#include <vector>

#include "benchutil/report.h"
#include "benchutil/workload.h"
#include "common/stopwatch.h"
#include "common/logging.h"
#include "segdiff/exh_index.h"
#include "segdiff/naive.h"
#include "segdiff/segdiff_index.h"

namespace segdiff {
namespace {

constexpr int kGroups = 5;

int RunBench() {
  WorkloadConfig config = WorkloadConfig::FromEnv();
  const DiskSim disk = DiskSim::FromEnv();
  // Horizon covers all 5 groups.
  const int days_per_group = std::max(2, config.num_days / 2);
  config.num_days = days_per_group * kGroups;
  auto series_or = MakeSmoothedBenchSeries(config);
  SEGDIFF_CHECK(series_or.ok()) << series_or.status().ToString();
  const Series& series = *series_or;
  std::cout << "workload: " << series.size() << " observations in "
            << kGroups << " groups of " << days_per_group << " days\n";

  // Split into groups by time.
  std::vector<Series> groups(kGroups);
  const double t0 = series.front().t;
  const double group_span = days_per_group * 86400.0;
  for (const Sample& sample : series) {
    int g = static_cast<int>((sample.t - t0) / group_span);
    g = std::min(g, kGroups - 1);
    SEGDIFF_CHECK_OK(groups[static_cast<size_t>(g)].Append(sample));
  }

  const std::string seg_path = BenchDbPath("scalability_segdiff");
  SegDiffOptions options;
  options.eps = PaperDefaults::kEps;
  options.window_s = PaperDefaults::kWindowS;
  options.sim_seq_read_ns = disk.seq_ns;
  options.sim_random_read_ns = disk.random_ns;
  auto index = SegDiffIndex::Open(seg_path, options);
  SEGDIFF_CHECK(index.ok());

  const std::string exh_path = BenchDbPath("scalability_exh");
  ExhOptions exh_options;
  exh_options.window_s = PaperDefaults::kWindowS;
  exh_options.sim_seq_read_ns = disk.seq_ns;
  exh_options.sim_random_read_ns = disk.random_ns;
  auto exh = ExhIndex::Open(exh_path, exh_options);
  SEGDIFF_CHECK(exh.ok());

  PrintBanner(std::cout,
              "Figures 14-15: feature size and seq-scan time vs n "
              "(Exh measured for 2 groups, extrapolated after - as in "
              "the paper, which aborted Exh)");
  TablePrinter table({"groups", "n", "SegDiff feat", "SegDiff seq ms",
                      "Exh feat", "Exh seq ms", "naive ms", "r_f"});
  SearchOptions seq;
  seq.mode = QueryMode::kSeqScan;
  const double T = PaperDefaults::kTSeconds;
  const double V = PaperDefaults::kVDegrees;

  double exh_bytes_per_obs = 0.0;
  uint64_t n_so_far = 0;
  Series accumulated;  // for the intro's naive on-the-fly baseline
  for (int g = 0; g < kGroups; ++g) {
    SEGDIFF_CHECK_OK((*index)->IngestSeries(groups[static_cast<size_t>(g)]));
    for (const Sample& sample : groups[static_cast<size_t>(g)]) {
      SEGDIFF_CHECK_OK(accumulated.Append(sample));
    }
    n_so_far += groups[static_cast<size_t>(g)].size();
    std::string exh_feat;
    std::string exh_time = "-";
    if (g < 2) {
      SEGDIFF_CHECK_OK((*exh)->IngestSeries(groups[static_cast<size_t>(g)]));
      const ExhSizes sizes = (*exh)->GetSizes();
      exh_feat = HumanBytes(sizes.feature_bytes);
      exh_bytes_per_obs = static_cast<double>(sizes.feature_bytes) /
                          static_cast<double>(n_so_far);
      SEGDIFF_CHECK_OK((*exh)->DropCaches());
      SearchStats stats;
      SEGDIFF_CHECK((*exh)->SearchDrops(T, V, seq, &stats).ok());
      exh_time = Fmt(stats.seconds * 1e3, 2);
    } else {
      exh_feat = HumanBytes(static_cast<uint64_t>(
                     exh_bytes_per_obs * static_cast<double>(n_so_far))) +
                 std::string(" (extrapolated)");
    }

    SEGDIFF_CHECK_OK((*index)->DropCaches());
    SearchStats stats;
    SEGDIFF_CHECK((*index)->SearchDrops(T, V, seq, &stats).ok());

    // The introduction's strawman: difference every in-window pair of
    // raw observations on the fly (no precomputation at all).
    Stopwatch naive_watch;
    const NaiveSearcher naive(accumulated);
    const size_t naive_hits = naive.SearchDrops(T, V).size();
    const double naive_ms = naive_watch.ElapsedMillis();
    (void)naive_hits;

    const SegDiffSizes sizes = (*index)->GetSizes();
    const double exh_bytes_now =
        exh_bytes_per_obs * static_cast<double>(n_so_far);
    table.AddRow({std::to_string(g + 1), std::to_string(n_so_far),
                  HumanBytes(sizes.feature_bytes), Fmt(stats.seconds * 1e3, 2),
                  exh_feat, exh_time, Fmt(naive_ms, 2),
                  Fmt(exh_bytes_now /
                          static_cast<double>(sizes.feature_bytes),
                      2)});
  }
  table.Print(std::cout);
  std::cout << "expected shape: SegDiff feature size and scan time grow "
               "~linearly with n; r_f stays ~an order of magnitude "
               "(paper: 12.26 for two groups). The naive column re-derives "
               "every in-window raw pair per query with all data pinned in "
               "RAM; it is CPU-trivial at this scale but rescans everything "
               "per query and grows as n*n_w - at the paper's scale "
               "(25 sensors x 1 year, disk resident) it took hours.\n";
  RemoveBenchDb(seg_path);
  RemoveBenchDb(exh_path);
  return 0;
}

}  // namespace
}  // namespace segdiff

int main() { return segdiff::RunBench(); }
