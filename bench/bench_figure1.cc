// Reproduces the paper's Figure 1: (a) a day of CAD transect data,
// (b) its piecewise linear approximation, (c) a search result overlaid
// as four vertical markers (the returned pair's segment-end periods).
//
// Prints an ASCII rendition and writes plot-ready CSVs
// (figure1_data.csv, figure1_segments.csv, figure1_result.csv) to the
// bench temp directory.

#include <algorithm>
#include <cstdio>
#include <iostream>
#include <string>
#include <vector>

#include "benchutil/workload.h"
#include "common/env.h"
#include "common/logging.h"
#include "segdiff/segdiff_index.h"
#include "segment/sliding_window.h"
#include "ts/io.h"

namespace segdiff {
namespace {

void AsciiPlot(const Series& data, const PiecewiseLinear& pla,
               const PairId* result) {
  constexpr int kWidth = 110;
  constexpr int kHeight = 18;
  const double t0 = data.front().t;
  const double t1 = data.back().t;
  const SeriesStats stats = data.Stats();
  const double v0 = stats.min_v - 0.5;
  const double v1 = stats.max_v + 0.5;
  std::vector<std::string> canvas(kHeight, std::string(kWidth, ' '));
  auto put = [&](double t, double v, char c) {
    int x = static_cast<int>((t - t0) / (t1 - t0) * (kWidth - 1));
    int y = static_cast<int>((v1 - v) / (v1 - v0) * (kHeight - 1));
    x = std::clamp(x, 0, kWidth - 1);
    y = std::clamp(y, 0, kHeight - 1);
    canvas[static_cast<size_t>(y)][static_cast<size_t>(x)] = c;
  };
  for (const Sample& sample : data) {
    put(sample.t, sample.v, '.');
  }
  for (const DataSegment& segment : pla.segments()) {
    // Draw segment lines coarsely.
    for (int step = 0; step <= 20; ++step) {
      const double t =
          segment.start.t + (segment.end.t - segment.start.t) * step / 20.0;
      put(t, segment.ValueAt(t), 'o');
    }
  }
  if (result != nullptr) {
    for (double t : {result->t_d, result->t_c, result->t_b, result->t_a}) {
      if (t < t0 || t > t1) continue;
      const int x = std::clamp(
          static_cast<int>((t - t0) / (t1 - t0) * (kWidth - 1)), 0,
          kWidth - 1);
      for (int y = 0; y < kHeight; ++y) {
        canvas[static_cast<size_t>(y)][static_cast<size_t>(x)] = '|';
      }
    }
  }
  for (const std::string& line : canvas) {
    std::cout << line << "\n";
  }
  std::cout << "('.' data, 'o' piecewise linear approximation, '|' the "
               "four time stamps of one returned pair)\n";
}

int RunBench() {
  WorkloadConfig config = WorkloadConfig::FromEnv();
  config.num_days = std::max(2, std::min(config.num_days, 4));
  auto series_or = MakeSmoothedBenchSeries(config);
  SEGDIFF_CHECK(series_or.ok()) << series_or.status().ToString();

  // Pick the day with the deepest drop so the figure shows a CAD event.
  const Series& all = *series_or;
  double best_day_start = all.front().t;
  double best_drop = 0.0;
  for (int day = 0; day < config.num_days; ++day) {
    Series slice = all.Slice(day * 86400.0, (day + 1) * 86400.0);
    if (slice.size() < 10) continue;
    const SeriesStats stats = slice.Stats();
    if (stats.max_v - stats.min_v > best_drop) {
      best_drop = stats.max_v - stats.min_v;
      best_day_start = day * 86400.0;
    }
  }
  const Series day = all.Slice(best_day_start, best_day_start + 86400.0);
  SEGDIFF_CHECK_GE(day.size(), size_t{10});

  auto pla = SegmentSeriesWithTolerance(day, PaperDefaults::kEps);
  SEGDIFF_CHECK(pla.ok());
  std::cout << "Figure 1: " << day.size() << " observations, "
            << pla->size() << " segments (r="
            << day.size() / static_cast<double>(pla->size()) << ")\n\n";

  // One returned pair from the default query, for the overlay.
  const std::string db = BenchDbPath("figure1");
  SegDiffOptions options;
  options.eps = PaperDefaults::kEps;
  options.window_s = PaperDefaults::kWindowS;
  auto index = SegDiffIndex::Open(db, options);
  SEGDIFF_CHECK(index.ok());
  SEGDIFF_CHECK_OK((*index)->IngestSeries(day));
  auto results = (*index)->SearchDrops(PaperDefaults::kTSeconds,
                                       PaperDefaults::kVDegrees);
  SEGDIFF_CHECK(results.ok());
  const PairId* overlay = results->empty() ? nullptr : &results->front();

  AsciiPlot(day, *pla, overlay);

  // Plot-ready CSVs.
  const std::string dir = GetEnvString("TMPDIR", "/tmp");
  SEGDIFF_CHECK_OK(WriteSeriesCsv(day, dir + "/figure1_data.csv"));
  {
    FILE* f = std::fopen((dir + "/figure1_segments.csv").c_str(), "w");
    SEGDIFF_CHECK(f != nullptr);
    std::fprintf(f, "# t_start,v_start,t_end,v_end\n");
    for (const DataSegment& segment : pla->segments()) {
      std::fprintf(f, "%.17g,%.17g,%.17g,%.17g\n", segment.start.t,
                   segment.start.v, segment.end.t, segment.end.v);
    }
    std::fclose(f);
  }
  {
    FILE* f = std::fopen((dir + "/figure1_result.csv").c_str(), "w");
    SEGDIFF_CHECK(f != nullptr);
    std::fprintf(f, "# t_d,t_c,t_b,t_a\n");
    for (const PairId& pair : *results) {
      std::fprintf(f, "%.17g,%.17g,%.17g,%.17g\n", pair.t_d, pair.t_c,
                   pair.t_b, pair.t_a);
    }
    std::fclose(f);
  }
  std::cout << "\nwrote " << dir << "/figure1_{data,segments,result}.csv ("
            << results->size() << " result pairs)\n";
  RemoveBenchDb(db);
  return 0;
}

}  // namespace
}  // namespace segdiff

int main() { return segdiff::RunBench(); }
