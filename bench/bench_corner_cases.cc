// Reproduces Table 4 (Section 6.1): the percentage of parallelograms
// needing one, two, or three corner points under different error
// tolerances, and the resulting "effective corners" average (paper:
// ~2.13 at eps = 0.2, i.e. the case analysis halves corner storage
// relative to keeping all four corners).

#include <iostream>

#include "benchutil/report.h"
#include "benchutil/workload.h"
#include "common/logging.h"
#include "feature/extractor.h"
#include "segment/sliding_window.h"

namespace segdiff {
namespace {

constexpr double kEpsSweep[] = {0.1, 0.2, 0.4, 0.8, 1.0};
// Paper Table 4 rows: one/two/three corner percentages per eps.
constexpr double kPaperOne[] = {17.05, 19.83, 22.67, 25.88, 26.90};
constexpr double kPaperTwo[] = {46.43, 46.79, 47.09, 47.25, 47.10};
constexpr double kPaperThree[] = {36.52, 33.37, 30.24, 26.87, 26.00};

int RunBench() {
  const WorkloadConfig config = WorkloadConfig::FromEnv();
  auto series_or = MakeSmoothedBenchSeries(config);
  SEGDIFF_CHECK(series_or.ok()) << series_or.status().ToString();
  const Series& series = *series_or;
  std::cout << "workload: " << series.size() << " observations\n";

  PrintBanner(std::cout,
              "Table 4: percentage of corner cases (drop-search frontier "
              "size over cross pairs) under different error tolerances");
  TablePrinter table({"eps", "one corner %", "(paper)", "two corners %",
                      "(paper)", "three corners %", "(paper)",
                      "effective corners", "(paper 2.13 @ eps=0.2)"});
  int idx = 0;
  for (double eps : kEpsSweep) {
    auto pla = SegmentSeriesWithTolerance(series, eps);
    SEGDIFF_CHECK(pla.ok());
    ExtractorOptions options;
    options.eps = eps;
    options.window_s = PaperDefaults::kWindowS;
    ExtractorStats stats;
    SEGDIFF_CHECK_OK(ExtractFeatures(
        *pla, options, [](const PairFeatures&) { return Status::OK(); },
        &stats));
    const int kind = static_cast<int>(SearchKind::kDrop);
    const double total = static_cast<double>(stats.cross_pairs);
    const double one = 100.0 * stats.frontier_hist[kind][1] / total;
    const double two = 100.0 * stats.frontier_hist[kind][2] / total;
    const double three = 100.0 * stats.frontier_hist[kind][3] / total;
    const double effective = (one + 2 * two + 3 * three) / 100.0;
    table.AddRow({Fmt(eps, 1), Fmt(one, 2), Fmt(kPaperOne[idx], 2),
                  Fmt(two, 2), Fmt(kPaperTwo[idx], 2), Fmt(three, 2),
                  Fmt(kPaperThree[idx], 2), Fmt(effective, 2),
                  idx == 1 ? "2.13" : "-"});
    ++idx;
  }
  table.Print(std::cout);
  std::cout << "effective corners ~= 2 means the Table 2 case analysis "
               "halves parallelogram corner storage vs keeping all 4.\n";
  return 0;
}

}  // namespace
}  // namespace segdiff

int main() { return segdiff::RunBench(); }
