// Reproduces the paper's default-query time experiments (Section 6.1):
//   Figure 10: sequential-scan execution time with different r's
//   Figure 11: execution time using indexes with different r's
//   Table 5:  ratio of feature sizes r_f and sequential-scan time r_st
//   Table 6:  ratio of disk sizes r_d and index execution time r_it
//
// Protocol follows the paper: the default query (3 degC drop within 1
// hour), caches flushed before every query, averages over repetitions.

#include <functional>
#include <iostream>

#include "benchutil/report.h"
#include "benchutil/workload.h"
#include "common/env.h"
#include "common/logging.h"
#include "segdiff/exh_index.h"
#include "segdiff/segdiff_index.h"

namespace segdiff {
namespace {

constexpr double kEpsSweep[] = {0.1, 0.2, 0.4, 0.8, 1.0};
constexpr double kPaperRf[] = {5.88, 11.95, 23.96, 48.57, 61.71};
constexpr double kPaperRst[] = {3.19, 6.69, 11.20, 17.65, 19.22};
constexpr double kPaperRd[] = {4.26, 8.66, 17.37, 35.33, 44.42};
constexpr double kPaperRit[] = {5.88, 21.35, 85.93, 217.00, 279.34};

/// Runs `queries` repetitions of one query, cold cache, returns mean
/// seconds.
template <typename SearchFn>
double TimeColdQueries(const std::function<Status()>& drop_caches,
                       const SearchFn& search, int reps) {
  double total = 0.0;
  for (int i = 0; i < reps; ++i) {
    SEGDIFF_CHECK_OK(drop_caches());
    SearchStats stats;
    search(&stats);
    total += stats.seconds;
  }
  return total / reps;
}

int RunBench() {
  const WorkloadConfig config = WorkloadConfig::FromEnv();
  const DiskSim disk = DiskSim::FromEnv();
  const int reps =
      static_cast<int>(GetEnvInt64("SEGDIFF_BENCH_QUERY_REPS", 3));
  auto series_or = MakeSmoothedBenchSeries(config);
  SEGDIFF_CHECK(series_or.ok()) << series_or.status().ToString();
  const Series& series = *series_or;
  const double T = PaperDefaults::kTSeconds;
  const double V = PaperDefaults::kVDegrees;
  std::cout << "workload: " << series.size()
            << " observations; query: drop of " << -V << " degC within "
            << T / 3600.0 << " h; " << reps << " cold repetitions\n";

  // Exh baseline.
  const std::string exh_path = BenchDbPath("query_eps_exh");
  ExhOptions exh_options;
  exh_options.window_s = PaperDefaults::kWindowS;
  exh_options.sim_seq_read_ns = disk.seq_ns;
  exh_options.sim_random_read_ns = disk.random_ns;
  auto exh = ExhIndex::Open(exh_path, exh_options);
  SEGDIFF_CHECK(exh.ok());
  SEGDIFF_CHECK_OK((*exh)->IngestSeries(series));
  const ExhSizes exh_sizes = (*exh)->GetSizes();

  SearchOptions seq;
  seq.mode = QueryMode::kSeqScan;
  SearchOptions idx;
  idx.mode = QueryMode::kIndexScan;
  const double exh_seq = TimeColdQueries(
      [&] { return (*exh)->DropCaches(); },
      [&](SearchStats* stats) {
        SEGDIFF_CHECK((*exh)->SearchDrops(T, V, seq, stats).ok());
      },
      reps);
  const double exh_idx = TimeColdQueries(
      [&] { return (*exh)->DropCaches(); },
      [&](SearchStats* stats) {
        SEGDIFF_CHECK((*exh)->SearchDrops(T, V, idx, stats).ok());
      },
      reps);
  std::cout << "Exh: seq scan " << Fmt(exh_seq * 1e3, 2) << " ms, index "
            << Fmt(exh_idx * 1e3, 2)
            << " ms (paper, larger data: 6.44 s / 386.77 s)\n";

  PrintBanner(std::cout, "Figures 10-11 + Tables 5-6");
  TablePrinter table({"eps", "r", "seq ms (Fig10)", "idx ms (Fig11)",
                      "r_f", "(paper)", "r_st", "(paper)", "r_d", "(paper)",
                      "r_it", "(paper)"});
  int row = 0;
  for (double eps : kEpsSweep) {
    const std::string path = BenchDbPath("query_eps_segdiff_" + Fmt(eps, 1));
    SegDiffOptions options;
    options.eps = eps;
    options.window_s = PaperDefaults::kWindowS;
    options.sim_seq_read_ns = disk.seq_ns;
    options.sim_random_read_ns = disk.random_ns;
    auto index = SegDiffIndex::Open(path, options);
    SEGDIFF_CHECK(index.ok());
    SEGDIFF_CHECK_OK((*index)->IngestSeries(series));
    const double r = static_cast<double>((*index)->num_observations()) /
                     static_cast<double>((*index)->num_segments());

    const double seg_seq = TimeColdQueries(
        [&] { return (*index)->DropCaches(); },
        [&](SearchStats* stats) {
          SEGDIFF_CHECK((*index)->SearchDrops(T, V, seq, stats).ok());
        },
        reps);
    const double seg_idx = TimeColdQueries(
        [&] { return (*index)->DropCaches(); },
        [&](SearchStats* stats) {
          SEGDIFF_CHECK((*index)->SearchDrops(T, V, idx, stats).ok());
        },
        reps);

    const SegDiffSizes sizes = (*index)->GetSizes();
    const double r_f = static_cast<double>(exh_sizes.feature_bytes) /
                       static_cast<double>(sizes.feature_bytes);
    const double r_d =
        static_cast<double>(exh_sizes.feature_bytes + exh_sizes.index_bytes) /
        static_cast<double>(sizes.feature_bytes + sizes.index_bytes);
    table.AddRow({Fmt(eps, 1), Fmt(r, 2), Fmt(seg_seq * 1e3, 2),
                  Fmt(seg_idx * 1e3, 2), Fmt(r_f, 2), Fmt(kPaperRf[row], 2),
                  Fmt(exh_seq / seg_seq, 2), Fmt(kPaperRst[row], 2),
                  Fmt(r_d, 2), Fmt(kPaperRd[row], 2),
                  Fmt(exh_idx / seg_idx, 2), Fmt(kPaperRit[row], 2)});
    RemoveBenchDb(path);
    ++row;
  }
  table.Print(std::cout);
  std::cout << "paper observation to check: for this dense default query, "
               "index access is SLOWER than the sequential scan for both "
               "approaches.\n";
  RemoveBenchDb(exh_path);
  return 0;
}

}  // namespace
}  // namespace segdiff

int main() { return segdiff::RunBench(); }
