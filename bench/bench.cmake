# Bench targets are defined from the top-level list file (not via
# add_subdirectory) so that ${CMAKE_BINARY_DIR}/bench contains ONLY the
# bench executables — the documented run loop is
#   for b in build/bench/*; do $b; done
# One binary per reproduced paper table/figure group; see DESIGN.md.

function(segdiff_add_bench name)
  add_executable(${name} ${CMAKE_SOURCE_DIR}/bench/${name}.cc)
  target_link_libraries(${name} PRIVATE segdiff)
  set_target_properties(${name} PROPERTIES RUNTIME_OUTPUT_DIRECTORY
                        ${CMAKE_BINARY_DIR}/bench)
endfunction()

segdiff_add_bench(bench_compression)
segdiff_add_bench(bench_corner_cases)
segdiff_add_bench(bench_query_eps)
segdiff_add_bench(bench_window)
segdiff_add_bench(bench_scalability)
segdiff_add_bench(bench_query_regions)
segdiff_add_bench(bench_ablation)
segdiff_add_bench(bench_figure1)
segdiff_add_bench(bench_parallel)
segdiff_add_bench(bench_ingest)
segdiff_add_bench(bench_checksum)
segdiff_add_bench(bench_scan)
segdiff_add_bench(bench_governance)
segdiff_add_bench(bench_shard)

segdiff_add_bench(bench_micro)
target_link_libraries(bench_micro PRIVATE benchmark::benchmark)
