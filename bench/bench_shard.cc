// Sharded transect scatter-gather: the two claims behind the 25 ->
// 100k+ sensor scale-up, measured separately.
//
// Phase 1 (speedup): a >= 1k-sensor transect on simulated cold storage
// (every page read pays a 200-400 us device latency, as in the paper's
// cold-cache experiments). The per-shard fan-out overlaps those device
// waits, so wall-clock speedup at 8 threads should be >= 4x over the
// serial sweep even on few cores — and the hits must stay
// byte-identical to serial at every width.
//
// Phase 2 (bounded memory): a 100k-sensor transect built and searched
// through a 64-slot StoreLru. The store cache must never hold more
// than max_open_stores stores (peak_open <= cap) while every sensor
// still gets ingested and searched. File syncs are disabled through a
// no-op-Sync Vfs: the phase measures store management (open/evict
// churn, catalog routing, cache discipline), not fsync throughput.
//
// Results additionally land in BENCH_shard.json.

#include <cstdio>
#include <cstring>
#include <filesystem>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "benchutil/report.h"
#include "benchutil/workload.h"
#include "common/logging.h"
#include "common/stopwatch.h"
#include "common/vfs.h"
#include "segdiff/transect_index.h"
#include "ts/generator.h"

namespace segdiff {
namespace {

constexpr size_t kThreadCounts[] = {1, 2, 4, 8};

/// Peak resident set (VmHWM) in KiB, from /proc/self/status; 0 when
/// unavailable (non-Linux).
uint64_t PeakRssKb() {
  FILE* f = std::fopen("/proc/self/status", "r");
  if (f == nullptr) {
    return 0;
  }
  char line[256];
  uint64_t kb = 0;
  while (std::fgets(line, sizeof(line), f) != nullptr) {
    if (std::strncmp(line, "VmHWM:", 6) == 0) {
      std::sscanf(line + 6, "%llu", reinterpret_cast<unsigned long long*>(&kb));
      break;
    }
  }
  std::fclose(f);
  return kb;
}

/// RandomAccessFile whose Sync is a no-op; everything else forwards.
class NoSyncFile : public RandomAccessFile {
 public:
  explicit NoSyncFile(std::unique_ptr<RandomAccessFile> base)
      : base_(std::move(base)) {}
  Status Read(uint64_t offset, size_t n, char* buf) override {
    return base_->Read(offset, n, buf);
  }
  Status Write(uint64_t offset, const char* buf, size_t n) override {
    return base_->Write(offset, buf, n);
  }
  Status Truncate(uint64_t size) override { return base_->Truncate(size); }
  Status Sync() override { return Status::OK(); }
  Result<uint64_t> Size() override { return base_->Size(); }

 private:
  std::unique_ptr<RandomAccessFile> base_;
};

/// Vfs that elides every fsync (file and directory). Phase 2 opens and
/// evicts 100k stores; with real fsyncs the run would measure the disk's
/// flush latency 100k times over instead of the store-cache machinery.
class NoSyncVfs : public Vfs {
 public:
  NoSyncVfs() : base_(Vfs::Default()) {}
  Result<std::unique_ptr<RandomAccessFile>> OpenFile(const std::string& path,
                                                     bool create) override {
    SEGDIFF_ASSIGN_OR_RETURN(std::unique_ptr<RandomAccessFile> file,
                             base_->OpenFile(path, create));
    return std::unique_ptr<RandomAccessFile>(
        std::make_unique<NoSyncFile>(std::move(file)));
  }
  Status SyncDir(const std::string&) override { return Status::OK(); }
  Status MakeDir(const std::string& path) override {
    return base_->MakeDir(path);
  }
  bool FileExists(const std::string& path) override {
    return base_->FileExists(path);
  }
  Status RemoveFile(const std::string& path) override {
    return base_->RemoveFile(path);
  }
  Status Rename(const std::string& from, const std::string& to) override {
    return base_->Rename(from, to);
  }
  Result<std::vector<std::string>> ListDir(const std::string& path) override {
    return base_->ListDir(path);
  }
  Status RemoveDir(const std::string& path) override {
    return base_->RemoveDir(path);
  }

 private:
  Vfs* base_;
};

void RemoveTransect(const std::string& dir) {
  // Bench stores are throwaway; a plain recursive delete is fine.
  std::error_code ec;
  std::filesystem::remove_all(dir, ec);
}

/// Phase 1: serial-vs-parallel scatter-gather on simulated cold storage.
JsonValue RunSpeedupPhase(bool quick) {
  const int sensors = quick ? 64 : 1024;
  const int days = 1;

  PrintBanner(std::cout,
              "Phase 1: scatter-gather speedup, " + std::to_string(sensors) +
                  " sensors on simulated cold storage");

  CadGeneratorOptions gen;
  gen.num_days = days;
  gen.cad_events_per_day = 1.0;
  auto data = GenerateCadTransect(gen, sensors);
  SEGDIFF_CHECK(data.ok()) << data.status().ToString();
  std::vector<Series> all_series;
  for (auto& sensor : *data) {
    all_series.push_back(std::move(sensor.series));
  }

  const std::string dir = BenchDbPath("shard_speedup");
  RemoveTransect(dir);
  TransectOptions build_options;
  build_options.store.window_s = 4 * 3600.0;
  build_options.store.wal = false;           // bulk build
  build_options.store.build_indexes = false; // seq-scan search phase
  build_options.store.collect_jumps = false;
  build_options.store.buffer_pool_pages = 32;
  build_options.sensors_per_shard = quick ? 8 : 32;
  {
    auto transect = TransectIndex::Open(dir, sensors, build_options);
    SEGDIFF_CHECK(transect.ok()) << transect.status().ToString();
    Stopwatch watch;
    SEGDIFF_CHECK_OK((*transect)->IngestAllSensors(all_series, 8));
    SEGDIFF_CHECK_OK((*transect)->Checkpoint());
    std::cout << "built " << sensors << " stores in "
              << Fmt(watch.ElapsedSeconds()) << " s\n";
  }

  // Reopen with per-page device latency: 200 us sequential / 400 us
  // random — cold-HDD territory, the regime the paper's 10-second
  // transect sweep lives in. nanosleep-backed, so concurrent shards
  // genuinely overlap their device waits.
  TransectOptions search_options = build_options;
  search_options.store.sim_seq_read_ns = 200000;
  search_options.store.sim_random_read_ns = 400000;
  auto transect = TransectIndex::Open(dir, sensors, search_options);
  SEGDIFF_CHECK(transect.ok()) << transect.status().ToString();

  const double T = 3600.0;
  const double V = -3.0;
  TablePrinter table({"threads", "wall s", "speedup", "hits", "identical"});
  JsonValue rows = JsonValue::Array();
  std::vector<TransectHit> serial_hits;
  double serial_seconds = 0.0;
  double speedup_at_8 = 0.0;
  bool all_identical = true;
  for (const size_t threads : kThreadCounts) {
    // Evict every buffer pool so each width starts equally cold.
    SEGDIFF_CHECK_OK((*transect)->DropCaches());
    SearchOptions options;
    options.num_threads = threads;
    TransectSearchStats stats;
    Stopwatch watch;
    auto hits = (*transect)->SearchDrops(T, V, options, &stats);
    SEGDIFF_CHECK(hits.ok()) << hits.status().ToString();
    const double seconds = watch.ElapsedSeconds();
    if (threads == 1) {
      serial_hits = *hits;
      serial_seconds = seconds;
    }
    const bool identical = *hits == serial_hits;
    all_identical = all_identical && identical;
    const double speedup = serial_seconds / seconds;
    if (threads == 8) {
      speedup_at_8 = speedup;
    }
    table.AddRow({std::to_string(threads), Fmt(seconds, 3), Fmt(speedup),
                  std::to_string(hits->size()), identical ? "yes" : "NO"});
    JsonValue row = JsonValue::Object();
    row.Set("threads", static_cast<int64_t>(threads));
    row.Set("wall_s", seconds);
    row.Set("speedup", speedup);
    row.Set("hits", static_cast<int64_t>(hits->size()));
    row.Set("identical_to_serial", identical);
    rows.Append(std::move(row));
  }
  table.Print(std::cout);
  std::cout << "speedup at 8 threads: " << Fmt(speedup_at_8)
            << "x (target >= 4x; device waits overlap across shards)\n";
  SEGDIFF_CHECK(all_identical)
      << "parallel scatter-gather diverged from the serial sweep";

  transect->reset();
  RemoveTransect(dir);

  JsonValue phase = JsonValue::Object();
  phase.Set("sensors", static_cast<int64_t>(sensors));
  phase.Set("sim_seq_read_us", static_cast<int64_t>(200));
  phase.Set("sim_random_read_us", static_cast<int64_t>(400));
  phase.Set("results", std::move(rows));
  phase.Set("speedup_at_8_threads", speedup_at_8);
  phase.Set("all_identical", all_identical);
  return phase;
}

/// Phase 2: 100k sensors through a 64-slot store cache.
JsonValue RunScalePhase(bool quick) {
  const int sensors = quick ? 2000 : 100000;
  const size_t max_open = 64;

  PrintBanner(std::cout,
              "Phase 2: " + std::to_string(sensors) +
                  " sensors through a " + std::to_string(max_open) +
                  "-slot store cache");

  // Tiny per-sensor series: a day of hourly samples with one sharp
  // 5-degree drop. The phase stresses store management, not scan volume.
  Series series;
  for (int i = 0; i < 24; ++i) {
    const double t = i * 3600.0;
    const double v = i < 12 ? 10.0 : 5.0;
    SEGDIFF_CHECK_OK(series.Append({t, v}));
  }

  NoSyncVfs no_sync;
  const std::string dir = BenchDbPath("shard_scale");
  RemoveTransect(dir);
  TransectOptions options;
  options.store.wal = false;
  options.store.build_indexes = false;
  options.store.collect_jumps = false;
  options.store.buffer_pool_pages = 16;
  options.store.vfs = &no_sync;
  options.sensors_per_shard = 512;
  options.max_open_stores = max_open;
  auto transect = TransectIndex::Open(dir, sensors, options);
  SEGDIFF_CHECK(transect.ok()) << transect.status().ToString();

  std::vector<Series> all_series(static_cast<size_t>(sensors), series);
  Stopwatch build_watch;
  SEGDIFF_CHECK_OK((*transect)->IngestAllSensors(all_series, 8));
  const double build_seconds = build_watch.ElapsedSeconds();
  all_series.clear();

  SearchOptions search;
  search.num_threads = 8;
  TransectSearchStats stats;
  Stopwatch search_watch;
  auto hits = (*transect)->SearchDrops(3600.0, -3.0, search, &stats);
  SEGDIFF_CHECK(hits.ok()) << hits.status().ToString();
  const double search_seconds = search_watch.ElapsedSeconds();
  // Every sensor holds the same drop, so every sensor must report it.
  SEGDIFF_CHECK(static_cast<int>(hits->size()) >= sensors)
      << "expected >= 1 hit per sensor, got " << hits->size();

  const StoreLruStats cache = (*transect)->store_stats();
  const uint64_t rss_kb = PeakRssKb();
  const bool within_cap = cache.peak_open <= max_open;
  TablePrinter table({"metric", "value"});
  table.AddRow({"build wall s", Fmt(build_seconds)});
  table.AddRow({"search wall s (8-way)", Fmt(search_seconds)});
  table.AddRow({"hits", std::to_string(hits->size())});
  table.AddRow({"peak open stores",
                std::to_string(cache.peak_open) + " / " +
                    std::to_string(max_open) +
                    (within_cap ? " (within cap)" : " (OVER CAP)")});
  table.AddRow({"store opens", std::to_string(cache.opens)});
  table.AddRow({"evictions", std::to_string(cache.evictions)});
  table.AddRow({"cache hits", std::to_string(cache.hits)});
  table.AddRow({"peak RSS MiB", Fmt(rss_kb / 1024.0, 1)});
  table.Print(std::cout);
  SEGDIFF_CHECK(within_cap) << "store cache exceeded max_open_stores";

  transect->reset();
  RemoveTransect(dir);

  JsonValue phase = JsonValue::Object();
  phase.Set("sensors", static_cast<int64_t>(sensors));
  phase.Set("max_open_stores", static_cast<int64_t>(max_open));
  phase.Set("peak_open_stores", static_cast<int64_t>(cache.peak_open));
  phase.Set("within_cap", within_cap);
  phase.Set("store_opens", static_cast<int64_t>(cache.opens));
  phase.Set("evictions", static_cast<int64_t>(cache.evictions));
  phase.Set("cache_hits", static_cast<int64_t>(cache.hits));
  phase.Set("build_s", build_seconds);
  phase.Set("search_s", search_seconds);
  phase.Set("hits", static_cast<int64_t>(hits->size()));
  phase.Set("peak_rss_kb", static_cast<int64_t>(rss_kb));
  return phase;
}

int RunBench(bool quick) {
  JsonValue root = JsonValue::Object();
  root.Set("bench", "shard");
  root.Set("quick", quick);
  root.Set("speedup_phase", RunSpeedupPhase(quick));
  root.Set("scale_phase", RunScalePhase(quick));
  const std::string json_path = BenchReportPath("BENCH_shard.json");
  if (WriteJsonFile(json_path, root)) {
    std::cout << "\nresults written to " << json_path << "\n";
  }
  return 0;
}

}  // namespace
}  // namespace segdiff

int main(int argc, char** argv) {
  bool quick = false;
  for (int i = 1; i < argc; ++i) {
    quick |= std::string(argv[i]) == "--quick";
  }
  return segdiff::RunBench(quick);
}
