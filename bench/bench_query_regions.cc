// Reproduces the random-query-region experiments (Section 6.4,
// Figures 16-24): a grid of (T, V) queries over feature space,
// measuring per-query time for Exh and SegDiff, sequential scan and
// index access, with warm cache (Figs 17-22) and cold cache
// (Figs 23-24), plus the coverage (result count) of each query region
// (Fig 16) and the hard-query boundary.

#include <functional>
#include <iostream>
#include <vector>

#include "benchutil/report.h"
#include "benchutil/workload.h"
#include "common/logging.h"
#include "segdiff/exh_index.h"
#include "segdiff/segdiff_index.h"

namespace segdiff {
namespace {

const double kTHours[] = {1, 2, 4, 6, 8};
const double kVDegrees[] = {-1, -2, -4, -6, -9, -12};

struct Grid {
  double cell[6][5] = {};
};

void PrintGrid(std::ostream& os, const std::string& title, const Grid& grid,
               int precision, const char* unit) {
  PrintBanner(os, title);
  std::vector<std::string> headers = {"V \\ T(h)"};
  for (double t : kTHours) {
    headers.push_back(Fmt(t, 0) + "h");
  }
  TablePrinter table(headers);
  for (int vi = 0; vi < 6; ++vi) {
    std::vector<std::string> row = {Fmt(kVDegrees[vi], 0) + "C"};
    for (int ti = 0; ti < 5; ++ti) {
      row.push_back(Fmt(grid.cell[vi][ti], precision));
    }
    table.AddRow(row);
  }
  table.Print(os);
  os << "(" << unit << ")\n";
}

int RunBench() {
  const WorkloadConfig config = WorkloadConfig::FromEnv();
  const DiskSim disk = DiskSim::FromEnv();
  auto series_or = MakeSmoothedBenchSeries(config);
  SEGDIFF_CHECK(series_or.ok()) << series_or.status().ToString();
  const Series& series = *series_or;
  std::cout << "workload: " << series.size() << " observations; "
            << "query grid: T x V = 5 x 6\n";

  const std::string seg_path = BenchDbPath("regions_segdiff");
  SegDiffOptions options;
  options.eps = PaperDefaults::kEps;
  options.window_s = PaperDefaults::kWindowS;
  options.sim_seq_read_ns = disk.seq_ns;
  options.sim_random_read_ns = disk.random_ns;
  auto seg = SegDiffIndex::Open(seg_path, options);
  SEGDIFF_CHECK(seg.ok());
  SEGDIFF_CHECK_OK((*seg)->IngestSeries(series));

  const std::string exh_path = BenchDbPath("regions_exh");
  ExhOptions exh_options;
  exh_options.window_s = PaperDefaults::kWindowS;
  exh_options.sim_seq_read_ns = disk.seq_ns;
  exh_options.sim_random_read_ns = disk.random_ns;
  auto exh = ExhIndex::Open(exh_path, exh_options);
  SEGDIFF_CHECK(exh.ok());
  SEGDIFF_CHECK_OK((*exh)->IngestSeries(series));

  Grid coverage_seg;
  Grid coverage_exh;
  Grid seg_seq_warm, seg_idx_warm, exh_seq_warm, exh_idx_warm;
  Grid seg_seq_cold, seg_idx_cold, exh_seq_cold, exh_idx_cold;

  SearchOptions seq;
  seq.mode = QueryMode::kSeqScan;
  SearchOptions idx;
  idx.mode = QueryMode::kIndexScan;

  auto run = [&](bool cold, const SearchOptions& mode, auto& system,
                 double T, double V, double* count) {
    if (cold) {
      SEGDIFF_CHECK_OK(system->DropCaches());
    }
    SearchStats stats;
    auto result = system->SearchDrops(T, V, mode, &stats);
    SEGDIFF_CHECK(result.ok()) << result.status().ToString();
    if (count != nullptr) {
      *count = static_cast<double>(result->size());
    }
    return stats.seconds * 1e3;
  };

  for (int vi = 0; vi < 6; ++vi) {
    for (int ti = 0; ti < 5; ++ti) {
      const double T = kTHours[ti] * kHourSeconds;
      const double V = kVDegrees[vi];
      // Warm pass: prime the cache with one run, then measure.
      run(false, seq, *seg, T, V, nullptr);
      seg_seq_warm.cell[vi][ti] =
          run(false, seq, *seg, T, V, &coverage_seg.cell[vi][ti]);
      run(false, idx, *seg, T, V, nullptr);
      seg_idx_warm.cell[vi][ti] = run(false, idx, *seg, T, V, nullptr);
      run(false, seq, *exh, T, V, nullptr);
      exh_seq_warm.cell[vi][ti] =
          run(false, seq, *exh, T, V, &coverage_exh.cell[vi][ti]);
      run(false, idx, *exh, T, V, nullptr);
      exh_idx_warm.cell[vi][ti] = run(false, idx, *exh, T, V, nullptr);
      // Cold pass.
      seg_seq_cold.cell[vi][ti] = run(true, seq, *seg, T, V, nullptr);
      seg_idx_cold.cell[vi][ti] = run(true, idx, *seg, T, V, nullptr);
      exh_seq_cold.cell[vi][ti] = run(true, seq, *exh, T, V, nullptr);
      exh_idx_cold.cell[vi][ti] = run(true, idx, *exh, T, V, nullptr);
    }
  }

  PrintGrid(std::cout, "Figure 16: coverage of queries (SegDiff pairs "
                       "returned; hard region = top right)",
            coverage_seg, 0, "pairs");
  PrintGrid(std::cout, "Figure 16 (baseline): Exh events returned",
            coverage_exh, 0, "events");
  PrintGrid(std::cout, "Figure 17: Exh sequential scan, warm cache",
            exh_seq_warm, 2, "ms");
  PrintGrid(std::cout, "Figure 18: SegDiff sequential scan, warm cache",
            seg_seq_warm, 2, "ms");
  PrintGrid(std::cout, "Figure 19: Exh index access, warm cache",
            exh_idx_warm, 2, "ms");
  PrintGrid(std::cout, "Figure 20: SegDiff index access, warm cache",
            seg_idx_warm, 2, "ms");

  Grid ratio_seq_warm, ratio_idx_warm, ratio_seq_cold, ratio_idx_cold;
  double mean_seq_warm = 0, mean_idx_warm = 0, mean_seq_cold = 0,
         mean_idx_cold = 0;
  for (int vi = 0; vi < 6; ++vi) {
    for (int ti = 0; ti < 5; ++ti) {
      ratio_seq_warm.cell[vi][ti] =
          exh_seq_warm.cell[vi][ti] / seg_seq_warm.cell[vi][ti];
      ratio_idx_warm.cell[vi][ti] =
          exh_idx_warm.cell[vi][ti] / seg_idx_warm.cell[vi][ti];
      ratio_seq_cold.cell[vi][ti] =
          exh_seq_cold.cell[vi][ti] / seg_seq_cold.cell[vi][ti];
      ratio_idx_cold.cell[vi][ti] =
          exh_idx_cold.cell[vi][ti] / seg_idx_cold.cell[vi][ti];
      mean_seq_warm += ratio_seq_warm.cell[vi][ti];
      mean_idx_warm += ratio_idx_warm.cell[vi][ti];
      mean_seq_cold += ratio_seq_cold.cell[vi][ti];
      mean_idx_cold += ratio_idx_cold.cell[vi][ti];
    }
  }
  mean_seq_warm /= 30;
  mean_idx_warm /= 30;
  mean_seq_cold /= 30;
  mean_idx_cold /= 30;

  PrintGrid(std::cout,
            "Figure 21: ratio of sequential scan time (Exh/SegDiff), warm",
            ratio_seq_warm, 1, "x");
  PrintGrid(std::cout,
            "Figure 22: ratio of index execution time (Exh/SegDiff), warm",
            ratio_idx_warm, 1, "x");
  PrintGrid(std::cout,
            "Figure 23: ratio of sequential scan time, cold cache",
            ratio_seq_cold, 1, "x");
  PrintGrid(std::cout,
            "Figure 24: ratio of index execution time, cold cache",
            ratio_idx_cold, 1, "x");

  std::cout << "\nmean speedups: seq warm " << Fmt(mean_seq_warm, 1)
            << "x (paper ~9x), index warm " << Fmt(mean_idx_warm, 1)
            << "x (paper ~10x), seq cold " << Fmt(mean_seq_cold, 1)
            << "x (paper ~9x), index cold " << Fmt(mean_idx_cold, 1)
            << "x (paper ~20x)\n";
  RemoveBenchDb(seg_path);
  RemoveBenchDb(exh_path);
  return 0;
}

}  // namespace
}  // namespace segdiff

int main() { return segdiff::RunBench(); }
