// google-benchmark micro-benchmarks for the hot paths: segmentation,
// feature extraction, B+-tree insert/seek, buffer-pool fetch, Model-G
// evaluation, and predicate matching.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "benchutil/workload.h"
#include "common/coding.h"
#include "common/logging.h"
#include "common/random.h"
#include "feature/extractor.h"
#include "index/bplus_tree.h"
#include "query/predicate.h"
#include "query/scan_kernel.h"
#include "segment/sliding_window.h"
#include "storage/buffer_pool.h"
#include "storage/column_page.h"
#include "storage/pager.h"
#include "ts/generator.h"
#include "ts/interpolate.h"

namespace segdiff {
namespace {

const Series& SharedWalk() {
  static const Series* series = [] {
    auto walk = GenerateRandomWalk(1, 100000, 300.0, 0.2);
    SEGDIFF_CHECK(walk.ok());
    return new Series(std::move(walk).value());
  }();
  return *series;
}

void BM_SlidingWindowSegmentation(benchmark::State& state) {
  const Series& series = SharedWalk();
  const double eps = static_cast<double>(state.range(0)) / 100.0;
  for (auto _ : state) {
    auto pla = SegmentSeriesWithTolerance(series, eps);
    SEGDIFF_CHECK(pla.ok());
    benchmark::DoNotOptimize(pla->size());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(series.size()));
}
BENCHMARK(BM_SlidingWindowSegmentation)->Arg(10)->Arg(20)->Arg(80);

void BM_FeatureExtraction(benchmark::State& state) {
  const Series& series = SharedWalk();
  auto pla = SegmentSeriesWithTolerance(series, 0.2);
  SEGDIFF_CHECK(pla.ok());
  ExtractorOptions options;
  options.eps = 0.2;
  options.window_s = static_cast<double>(state.range(0)) * 3600.0;
  uint64_t rows = 0;
  for (auto _ : state) {
    rows = 0;
    Status status = ExtractFeatures(
        *pla, options,
        [&rows](const PairFeatures&) {
          ++rows;
          return Status::OK();
        },
        nullptr);
    SEGDIFF_CHECK_OK(status);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(rows));
}
BENCHMARK(BM_FeatureExtraction)->Arg(1)->Arg(8);

class TreeFixture : public benchmark::Fixture {
 public:
  void SetUp(const benchmark::State&) override {
    path_ = std::string("/tmp/segdiff_bench_micro_tree.db");
    std::remove(path_.c_str());
    auto pager = Pager::Open(path_, true);
    SEGDIFF_CHECK(pager.ok());
    pager_ = std::move(pager).value();
    pool_ = std::make_unique<BufferPool>(pager_.get(), 8192);
  }
  void TearDown(const benchmark::State&) override {
    pool_.reset();
    pager_.reset();
    std::remove(path_.c_str());
  }

 protected:
  std::string path_;
  std::unique_ptr<Pager> pager_;
  std::unique_ptr<BufferPool> pool_;
};

BENCHMARK_F(TreeFixture, BM_BPlusTreeInsert)(benchmark::State& state) {
  auto tree = BPlusTree::Create(pool_.get(), 2);
  SEGDIFF_CHECK(tree.ok());
  Rng rng(7);
  uint64_t rid = 0;
  for (auto _ : state) {
    IndexKey key;
    key.vals[0] = rng.Uniform(0, 1e6);
    key.vals[1] = rng.Uniform(-100, 100);
    key.rid = rid++;
    SEGDIFF_CHECK_OK(tree->Insert(key));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}

BENCHMARK_F(TreeFixture, BM_BPlusTreeSeek)(benchmark::State& state) {
  auto tree = BPlusTree::Create(pool_.get(), 2);
  SEGDIFF_CHECK(tree.ok());
  Rng rng(7);
  for (int i = 0; i < 100000; ++i) {
    IndexKey key;
    key.vals[0] = rng.Uniform(0, 1e6);
    key.vals[1] = rng.Uniform(-100, 100);
    key.rid = static_cast<uint64_t>(i);
    SEGDIFF_CHECK_OK(tree->Insert(key));
  }
  for (auto _ : state) {
    auto it = tree->Seek(IndexKey::LowerBound({rng.Uniform(0, 1e6)}));
    SEGDIFF_CHECK(it.ok());
    benchmark::DoNotOptimize(it->Valid());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}

BENCHMARK_F(TreeFixture, BM_BufferPoolFetchHit)(benchmark::State& state) {
  auto handle = pool_->AllocatePinned();
  SEGDIFF_CHECK(handle.ok());
  const PageId id = handle->page_id();
  handle->Release();
  for (auto _ : state) {
    auto again = pool_->Fetch(id);
    SEGDIFF_CHECK(again.ok());
    benchmark::DoNotOptimize(again->data());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}

void BM_ModelGEvaluation(benchmark::State& state) {
  const Series& series = SharedWalk();
  ModelGEvaluator eval(series);
  Rng rng(3);
  const double lo = series.front().t;
  const double hi = series.back().t;
  for (auto _ : state) {
    auto v = eval.ValueAt(rng.Uniform(lo, hi));
    SEGDIFF_CHECK(v.ok());
    benchmark::DoNotOptimize(*v);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_ModelGEvaluation);

void BM_PredicateMatch(benchmark::State& state) {
  Predicate predicate;
  predicate.And(0, CmpOp::kLe, 3600.0).And(1, CmpOp::kLe, -3.0);
  char record[40];
  Rng rng(5);
  EncodeDouble(record, rng.Uniform(0, 8 * 3600));
  EncodeDouble(record + 8, rng.Uniform(-10, 2));
  for (auto _ : state) {
    benchmark::DoNotOptimize(predicate.Matches(record));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_PredicateMatch);

/// Batched page evaluation: the selection-bitmap kernel over one full
/// page of drop2-shaped records. Arg 0 = portable scalar kernel, arg 1 =
/// the runtime-dispatched SIMD kernel (SSE2/AVX2 when available).
void BM_ScanKernelBatch(benchmark::State& state) {
  Predicate predicate;
  predicate.And(0, CmpOp::kLe, 3600.0).And(1, CmpOp::kLe, -3.0);
  constexpr size_t kColumns = 7;  // drop2: dt1 dv1 dt2 dv2 t_d t_c t_b
  constexpr size_t kRecordBytes = kColumns * 8;
  constexpr size_t kRows = 1021;  // kMaxBatchRows for 8-byte records
  std::vector<char> records(kRows * kRecordBytes);
  Rng rng(5);
  for (size_t i = 0; i < kRows; ++i) {
    char* rec = records.data() + i * kRecordBytes;
    EncodeDouble(rec, rng.Uniform(0, 8 * 3600));
    EncodeDouble(rec + 8, rng.Uniform(-10, 2));
    for (size_t c = 2; c < kColumns; ++c) {
      EncodeDouble(rec + 8 * c, rng.Uniform(0, 8 * 3600));
    }
  }
  const ScanKernelFn kernel =
      state.range(0) == 0 ? ScalarScanKernel() : ActiveScanKernel();
  state.SetLabel(state.range(0) == 0 ? "scalar" : ActiveScanKernelName());
  uint64_t bitmap[kBatchBitmapWords];
  for (auto _ : state) {
    kernel(records.data(), kRecordBytes, kRows,
           predicate.conditions().data(), predicate.conditions().size(),
           bitmap);
    benchmark::DoNotOptimize(bitmap[0]);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(kRows));
}
BENCHMARK(BM_ScanKernelBatch)->Arg(0)->Arg(1);

/// One full single-column segment encoded with EncodeColumnSegment,
/// decoded through ColumnCursor in 1024-value batches — the exact shape
/// the columnar SeqScan feeds to the selection-bitmap kernels.
struct EncodedColumn {
  std::string blob;
  ColumnDirEntry dir;
  const char* payload = nullptr;
  size_t rows = 0;
};

EncodedColumn EncodeOneColumn(const std::vector<double>& values,
                              ColumnEncoding expect) {
  EncodedColumn out;
  out.rows = values.size();
  std::vector<char> records(out.rows * 8);
  for (size_t r = 0; r < out.rows; ++r) {
    EncodeDouble(records.data() + r * 8, values[r]);
  }
  out.blob = EncodeColumnSegment(records.data(), 1, out.rows);
  SEGDIFF_CHECK(!out.blob.empty());
  // Single column: 16-byte header, one 32-byte dir entry, payload.
  const char* e = out.blob.data() + 16;
  out.dir.encoding = static_cast<ColumnEncoding>(e[0]);
  out.dir.scale_log10 = static_cast<uint8_t>(e[1]);
  std::memcpy(&out.dir.bit_width, e + 2, 2);
  std::memcpy(&out.dir.payload_bytes, e + 4, 4);
  std::memcpy(&out.dir.base, e + 8, 8);
  std::memcpy(&out.dir.min, e + 16, 8);
  std::memcpy(&out.dir.max, e + 24, 8);
  out.payload = out.blob.data() + 16 + 32;
  SEGDIFF_CHECK(out.dir.encoding == expect)
      << "workload no longer selects " << ColumnEncodingName(expect)
      << ", got " << ColumnEncodingName(out.dir.encoding);
  return out;
}

/// Frame-of-reference decode: centi-grid sensor drops in a narrow band,
/// the shape of dv columns after compaction.
void BM_DecodeFOR(benchmark::State& state) {
  static const EncodedColumn* col = [] {
    Rng rng(7);
    std::vector<double> dv;
    dv.reserve(ColumnStore::kMaxSegmentRows);
    for (size_t i = 0; i < ColumnStore::kMaxSegmentRows; ++i) {
      double v = std::round(rng.Uniform(-8.0, 2.0) * 100.0) / 100.0;
      if (v == 0.0) v = 0.0;  // TryQuantize rejects -0.0
      dv.push_back(v);
    }
    return new EncodedColumn(
        EncodeOneColumn(dv, ColumnEncoding::kForPacked));
  }();
  alignas(64) static double batch[1024];
  for (auto _ : state) {
    ColumnCursor cursor(&col->dir, col->payload, col->rows);
    for (size_t pos = 0; pos < col->rows; pos += 1024) {
      cursor.Decode(std::min<size_t>(1024, col->rows - pos), batch);
      benchmark::DoNotOptimize(batch[0]);
    }
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(col->rows));
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(col->rows * 8));
}
BENCHMARK(BM_DecodeFOR);

/// Gorilla-style XOR decode: raw doubles off the decimal grid — the
/// fallback encoding for unquantizable value columns.
void BM_DecodeXor(benchmark::State& state) {
  static const EncodedColumn* col = [] {
    Rng rng(11);
    std::vector<double> v;
    v.reserve(ColumnStore::kMaxSegmentRows);
    double walk = 20.0;
    for (size_t i = 0; i < ColumnStore::kMaxSegmentRows; ++i) {
      walk += rng.Uniform(-0.05, 0.05);
      v.push_back(walk);
    }
    return new EncodedColumn(EncodeOneColumn(v, ColumnEncoding::kXor));
  }();
  alignas(64) static double batch[1024];
  for (auto _ : state) {
    ColumnCursor cursor(&col->dir, col->payload, col->rows);
    for (size_t pos = 0; pos < col->rows; pos += 1024) {
      cursor.Decode(std::min<size_t>(1024, col->rows - pos), batch);
      benchmark::DoNotOptimize(batch[0]);
    }
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(col->rows));
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(col->rows * 8));
}
BENCHMARK(BM_DecodeXor);

}  // namespace
}  // namespace segdiff

// BENCHMARK_MAIN() with one extra spelling: --quick (used by the tier-1
// bench smoke) caps per-benchmark min time so the suite runs in seconds.
int main(int argc, char** argv) {
  std::vector<char*> args(argv, argv + argc);
  static char min_time[] = "--benchmark_min_time=0.01";
  for (auto it = args.begin(); it != args.end();) {
    if (std::string(*it) == "--quick") {
      it = args.erase(it);
      args.push_back(min_time);
    } else {
      ++it;
    }
  }
  int adjusted_argc = static_cast<int>(args.size());
  benchmark::Initialize(&adjusted_argc, args.data());
  if (benchmark::ReportUnrecognizedArguments(adjusted_argc, args.data())) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
