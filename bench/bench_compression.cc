// Reproduces the paper's space experiments (Section 6.1):
//   Table 3: compression rate r under different error tolerances
//   Figure 8: SegDiff feature size with different r's (+ Exh reference)
//   Figure 7: ratio of feature sizes (Exh / SegDiff) with different r's
//   Figure 9: disk sizes (features + indexes) with different r's
//
// Workload: synthetic CAD series (smoothed with robust weights, as in
// the paper), defaults eps sweep {0.1,0.2,0.4,0.8,1.0}, w = 8 h.

#include <cstdio>
#include <iostream>

#include "benchutil/report.h"
#include "benchutil/workload.h"
#include "common/logging.h"
#include "segdiff/exh_index.h"
#include "segdiff/segdiff_index.h"
#include "segment/sliding_window.h"

namespace segdiff {
namespace {

constexpr double kPaperR[] = {4.73, 7.03, 10.52, 16.10, 18.55};
constexpr double kEpsSweep[] = {0.1, 0.2, 0.4, 0.8, 1.0};

int RunBench() {
  const WorkloadConfig config = WorkloadConfig::FromEnv();
  auto series_or = MakeSmoothedBenchSeries(config);
  SEGDIFF_CHECK(series_or.ok()) << series_or.status().ToString();
  const Series& series = *series_or;
  std::cout << "workload: " << series.size() << " observations over "
            << config.num_days << " days (smoothed CAD transect sensor)\n";

  // Exh reference store (eps-independent).
  const std::string exh_path = BenchDbPath("compression_exh");
  ExhOptions exh_options;
  exh_options.window_s = PaperDefaults::kWindowS;
  auto exh = ExhIndex::Open(exh_path, exh_options);
  SEGDIFF_CHECK(exh.ok()) << exh.status().ToString();
  SEGDIFF_CHECK_OK((*exh)->IngestSeries(series));
  const ExhSizes exh_sizes = (*exh)->GetSizes();
  const double exh_disk =
      static_cast<double>(exh_sizes.feature_bytes + exh_sizes.index_bytes);

  PrintBanner(std::cout, "Table 3: compression rate r under different "
                         "segmentation error tolerances");
  TablePrinter t3({"eps", "r (measured)", "r (paper)"});
  TablePrinter figs({"eps", "r", "SegDiff feat", "Exh feat",
                     "ratio r_f (Fig 7)", "SegDiff disk", "Exh disk",
                     "ratio r_d"});
  int idx = 0;
  for (double eps : kEpsSweep) {
    const std::string path =
        BenchDbPath("compression_segdiff_" + Fmt(eps, 1));
    SegDiffOptions options;
    options.eps = eps;
    options.window_s = PaperDefaults::kWindowS;
    auto index = SegDiffIndex::Open(path, options);
    SEGDIFF_CHECK(index.ok()) << index.status().ToString();
    SEGDIFF_CHECK_OK((*index)->IngestSeries(series));

    const double r = static_cast<double>((*index)->num_observations()) /
                     static_cast<double>((*index)->num_segments());
    t3.AddRow({Fmt(eps, 1), Fmt(r, 2), Fmt(kPaperR[idx], 2)});

    const SegDiffSizes sizes = (*index)->GetSizes();
    const double feat = static_cast<double>(sizes.feature_bytes);
    const double disk = feat + static_cast<double>(sizes.index_bytes);
    figs.AddRow({Fmt(eps, 1), Fmt(r, 2), HumanBytes(sizes.feature_bytes),
                 HumanBytes(exh_sizes.feature_bytes),
                 Fmt(static_cast<double>(exh_sizes.feature_bytes) / feat, 2),
                 HumanBytes(static_cast<uint64_t>(disk)),
                 HumanBytes(static_cast<uint64_t>(exh_disk)),
                 Fmt(exh_disk / disk, 2)});

    // Index overhead factor (paper: ~1.1x feature size for SegDiff).
    if (eps == 0.2) {
      std::cout << "index overhead at eps=0.2: "
                << Fmt(static_cast<double>(sizes.index_bytes) / feat, 2)
                << "x feature size (paper: ~1.1x); Exh index overhead: "
                << Fmt(static_cast<double>(exh_sizes.index_bytes) /
                           static_cast<double>(exh_sizes.feature_bytes),
                       2)
                << "x (paper: ~0.5x)\n";
    }
    RemoveBenchDb(path);
    ++idx;
  }
  t3.Print(std::cout);
  PrintBanner(std::cout,
              "Figures 7/8/9: feature and disk sizes vs compression rate "
              "(paper at eps=0.2: Exh feat 383 MB ~= 12x SegDiff's 32 MB)");
  figs.Print(std::cout);
  RemoveBenchDb(exh_path);
  return 0;
}

}  // namespace
}  // namespace segdiff

int main() { return segdiff::RunBench(); }
