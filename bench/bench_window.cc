// Reproduces the window-size experiments (Section 6.2):
//   Figure 12: feature size with w varied (both approaches, ~linear)
//   Figure 13: sequential-scan time with w varied
//   Table 7:  ratio of feature sizes r_f and disk sizes r_d with w varied
//
// eps fixed at 0.2; w sweeps {1, 4, 8, 12, 16} hours as in the paper.

#include <functional>
#include <iostream>

#include "benchutil/report.h"
#include "benchutil/workload.h"
#include "common/env.h"
#include "common/logging.h"
#include "segdiff/exh_index.h"
#include "segdiff/segdiff_index.h"

namespace segdiff {
namespace {

constexpr double kWindowHours[] = {1, 4, 8, 12, 16};
constexpr double kPaperRf[] = {5.89, 9.98, 11.97, 13.14, 13.94};
constexpr double kPaperRd[] = {4.51, 7.30, 8.66, 9.53, 10.18};

int RunBench() {
  const WorkloadConfig config = WorkloadConfig::FromEnv();
  const DiskSim disk = DiskSim::FromEnv();
  const int reps =
      static_cast<int>(GetEnvInt64("SEGDIFF_BENCH_QUERY_REPS", 3));
  auto series_or = MakeSmoothedBenchSeries(config);
  SEGDIFF_CHECK(series_or.ok()) << series_or.status().ToString();
  const Series& series = *series_or;
  const double T = PaperDefaults::kTSeconds;
  const double V = PaperDefaults::kVDegrees;
  std::cout << "workload: " << series.size()
            << " observations; eps = 0.2; default query, cold cache\n";

  PrintBanner(std::cout, "Figures 12-13 + Table 7: window size sweep");
  TablePrinter table({"w (h)", "SegDiff feat", "Exh feat", "r_f", "(paper)",
                      "r_d", "(paper)", "SegDiff seq ms", "Exh seq ms"});
  SearchOptions seq;
  seq.mode = QueryMode::kSeqScan;
  int row = 0;
  for (double hours : kWindowHours) {
    const double w = hours * kHourSeconds;

    const std::string exh_path = BenchDbPath("window_exh_" + Fmt(hours, 0));
    ExhOptions exh_options;
    exh_options.window_s = w;
    exh_options.sim_seq_read_ns = disk.seq_ns;
    exh_options.sim_random_read_ns = disk.random_ns;
    auto exh = ExhIndex::Open(exh_path, exh_options);
    SEGDIFF_CHECK(exh.ok());
    SEGDIFF_CHECK_OK((*exh)->IngestSeries(series));

    const std::string seg_path =
        BenchDbPath("window_segdiff_" + Fmt(hours, 0));
    SegDiffOptions options;
    options.eps = PaperDefaults::kEps;
    options.window_s = w;
    options.sim_seq_read_ns = disk.seq_ns;
    options.sim_random_read_ns = disk.random_ns;
    auto index = SegDiffIndex::Open(seg_path, options);
    SEGDIFF_CHECK(index.ok());
    SEGDIFF_CHECK_OK((*index)->IngestSeries(series));

    auto time_cold = [&](const std::function<double()>& run,
                         const std::function<Status()>& drop) {
      double total = 0.0;
      for (int i = 0; i < reps; ++i) {
        SEGDIFF_CHECK_OK(drop());
        total += run();
      }
      return total / reps;
    };
    const double seg_seq = time_cold(
        [&] {
          SearchStats stats;
          SEGDIFF_CHECK((*index)->SearchDrops(T, V, seq, &stats).ok());
          return stats.seconds;
        },
        [&] { return (*index)->DropCaches(); });
    const double exh_seq = time_cold(
        [&] {
          SearchStats stats;
          SEGDIFF_CHECK((*exh)->SearchDrops(T, V, seq, &stats).ok());
          return stats.seconds;
        },
        [&] { return (*exh)->DropCaches(); });

    const SegDiffSizes seg_sizes = (*index)->GetSizes();
    const ExhSizes exh_sizes = (*exh)->GetSizes();
    const double r_f = static_cast<double>(exh_sizes.feature_bytes) /
                       static_cast<double>(seg_sizes.feature_bytes);
    const double r_d =
        static_cast<double>(exh_sizes.feature_bytes + exh_sizes.index_bytes) /
        static_cast<double>(seg_sizes.feature_bytes + seg_sizes.index_bytes);
    table.AddRow({Fmt(hours, 0), HumanBytes(seg_sizes.feature_bytes),
                  HumanBytes(exh_sizes.feature_bytes), Fmt(r_f, 2),
                  Fmt(kPaperRf[row], 2), Fmt(r_d, 2), Fmt(kPaperRd[row], 2),
                  Fmt(seg_seq * 1e3, 2), Fmt(exh_seq * 1e3, 2)});
    RemoveBenchDb(seg_path);
    RemoveBenchDb(exh_path);
    ++row;
  }
  table.Print(std::cout);
  std::cout << "expected shape: both feature sizes grow ~linearly with w "
               "but r_f INCREASES with w (paper Section 6.2).\n";
  return 0;
}

}  // namespace
}  // namespace segdiff

int main() { return segdiff::RunBench(); }
